// The live-migration / defragmentation subsystem (DESIGN.md §9):
// MigrationPlan validation and JSON round-trip (including the scenario_io
// error paths), the empty-plan bit-identity contract, single-VM migration
// semantics with exact double-charge power settlement, budget enforcement,
// and thread-count determinism of a nonempty fault+migration sweep matrix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/migration.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

wl::Workload small_workload(std::size_t n = 300, std::uint64_t seed = 11) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, seed);
}

FaultAction fail_box_at(std::uint32_t box, double time) {
  FaultAction a;
  a.kind = FaultAction::Kind::Fail;
  a.at_time = time;
  a.box = box;
  return a;
}

FaultAction repair_box_at(std::uint32_t box, double time) {
  FaultAction a = fail_box_at(box, time);
  a.kind = FaultAction::Kind::Repair;
  return a;
}

MigrationPlan defrag_plan(double period, std::uint32_t per_sweep,
                          std::uint32_t total) {
  MigrationPlan plan;
  plan.period_tu = period;
  plan.per_sweep_budget = per_sweep;
  plan.total_budget = total;
  return plan;
}

// --- MigrationPlan model -----------------------------------------------------

TEST(MigrationPlanModel, ValidateRejectsMalformedPlans) {
  MigrationPlan negative_period;
  negative_period.period_tu = -1.0;
  EXPECT_THROW(negative_period.validate(), std::invalid_argument);

  MigrationPlan negative_cost = defrag_plan(100.0, 1, 10);
  negative_cost.fixed_cost_tu = -0.5;
  EXPECT_THROW(negative_cost.validate(), std::invalid_argument);

  MigrationPlan bad_fraction = defrag_plan(100.0, 1, 10);
  bad_fraction.min_interrack_fraction = 1.5;
  EXPECT_THROW(bad_fraction.validate(), std::invalid_argument);

  MigrationPlan negative_first = defrag_plan(100.0, 1, 10);
  negative_first.first_sweep_at = -2.0;
  EXPECT_THROW(negative_first.validate(), std::invalid_argument);

  EXPECT_NO_THROW(defrag_plan(100.0, 2, 10).validate());
}

TEST(MigrationPlanModel, EmptySemantics) {
  EXPECT_TRUE(MigrationPlan{}.empty());
  EXPECT_FALSE(defrag_plan(100.0, 1, 10).empty());
  // Any zeroed budget disables the plan.
  EXPECT_TRUE(defrag_plan(100.0, 0, 10).empty());
  EXPECT_TRUE(defrag_plan(100.0, 1, 0).empty());
  EXPECT_TRUE(defrag_plan(0.0, 1, 10).empty());
  // First sweep defaults to one period in.
  EXPECT_DOUBLE_EQ(defrag_plan(100.0, 1, 10).first_sweep_time(), 100.0);
  MigrationPlan early = defrag_plan(100.0, 1, 10);
  early.first_sweep_at = 30.0;
  EXPECT_DOUBLE_EQ(early.first_sweep_time(), 30.0);
}

TEST(MigrationPolicy, SpreadScoreAndRanking) {
  // Packed keys sort worst-spread first, index ascending on ties.
  std::vector<std::uint64_t> keys = {
      pack_candidate(0, 5), pack_candidate(3, 9), pack_candidate(2, 1),
      pack_candidate(3, 2), pack_candidate(1, 0),
  };
  rank_worst_spread(keys, keys.size());
  EXPECT_EQ(candidate_index(keys[0]), 2u);  // score 3, lowest index first
  EXPECT_EQ(candidate_index(keys[1]), 9u);  // score 3
  EXPECT_EQ(candidate_index(keys[2]), 1u);  // score 2
  EXPECT_EQ(candidate_index(keys[3]), 0u);  // score 1
  EXPECT_EQ(candidate_index(keys[4]), 5u);  // score 0

  // Transfer cost: 16384 MB * 8 / 20000 Mbit/s = 6.5536 s at 1 s/tu,
  // plus the fixed term; disabled transfer leaves only the fixed term.
  MigrationPlan plan;
  plan.fixed_cost_tu = 2.0;
  EXPECT_NEAR(migration_cost_tu(plan, 16384, 20000, 1.0), 2.0 + 6.5536,
              1e-12);
  plan.charge_transfer = false;
  EXPECT_DOUBLE_EQ(migration_cost_tu(plan, 16384, 20000, 1.0), 2.0);
  plan.charge_transfer = true;
  EXPECT_DOUBLE_EQ(migration_cost_tu(plan, 16384, 0, 1.0), 2.0);  // no flow
}

// --- JSON round-trip + error paths (scenario_io) -----------------------------

TEST(MigrationPlanJson, RoundTripIsExact) {
  MigrationPlan plan;
  plan.period_tu = 212.5;
  plan.first_sweep_at = 17.25;
  plan.min_interrack_fraction = 0.125;
  plan.per_sweep_budget = 6;
  plan.total_budget = 4000;
  plan.fixed_cost_tu = 1.5;
  plan.charge_transfer = false;
  plan.only_if_improves = false;
  plan.skip_while_degraded = true;

  const std::string json = migration_plan_json(plan);
  EXPECT_EQ(parse_migration_plan_json(json), plan);
  // Defaults (the empty plan) round-trip too.
  EXPECT_EQ(parse_migration_plan_json(migration_plan_json(MigrationPlan{})),
            MigrationPlan{});
  // Omitted keys keep their defaults.
  const MigrationPlan partial =
      parse_migration_plan_json("{\"period_tu\": 50}");
  EXPECT_DOUBLE_EQ(partial.period_tu, 50.0);
  EXPECT_EQ(partial.per_sweep_budget, 1u);
  EXPECT_TRUE(partial.charge_transfer);
}

TEST(MigrationPlanJson, ParserRejectsGarbage) {
  // Unknown/typo keys must surface, not silently no-op.
  EXPECT_THROW((void)parse_migration_plan_json("{\"period\": 100}"),
               std::runtime_error);
  // Malformed booleans and numbers.
  EXPECT_THROW(
      (void)parse_migration_plan_json("{\"charge_transfer\": yes}"),
      std::runtime_error);
  EXPECT_THROW((void)parse_migration_plan_json("{\"period_tu\": }"),
               std::runtime_error);
  EXPECT_THROW((void)parse_migration_plan_json("{\"per_sweep_budget\": 1.5}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_migration_plan_json("{\"total_budget\": -3}"),
               std::runtime_error);
  // Trailing content and unterminated documents.
  EXPECT_THROW((void)parse_migration_plan_json("{} extra"),
               std::runtime_error);
  EXPECT_THROW((void)parse_migration_plan_json("{\"period_tu\": 10"),
               std::runtime_error);
  // Valid JSON, invalid plan: validation runs on parse.
  EXPECT_THROW((void)parse_migration_plan_json("{\"period_tu\": -5}"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_migration_plan_json("{\"min_interrack_fraction\": 2}"),
      std::runtime_error);
}

TEST(FaultPlanJson, LinkActionsRoundTripAndErrorPaths) {
  FaultPlan plan;
  plan.seed = 5;
  FaultAction link_fail;
  link_fail.kind = FaultAction::Kind::LinkFail;
  link_fail.at_time = 120.0;
  link_fail.random_links = 3;
  plan.actions.push_back(link_fail);
  FaultAction link_repair;
  link_repair.kind = FaultAction::Kind::LinkRepair;
  link_repair.at_time = 360.0;
  link_repair.link = 17;
  plan.actions.push_back(link_repair);

  const std::string json = fault_plan_json(plan);
  EXPECT_NE(json.find("link-fail"), std::string::npos);
  EXPECT_EQ(parse_fault_plan_json(json), plan);

  // Link victims on a box action (and vice versa) fail validation at parse.
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": \"fail\", "
                                  "\"at_time\": 1, \"link\": 2}]}"),
      std::runtime_error);
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": "
                                  "\"link-fail\", \"at_time\": 1, "
                                  "\"box\": 2}]}"),
      std::runtime_error);
  // Both victim forms at once.
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": "
                                  "\"link-fail\", \"at_time\": 1, "
                                  "\"link\": 2, \"random_links\": 1}]}"),
      std::runtime_error);
  // Unknown victim key.
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": "
                                  "\"link-fail\", \"at_time\": 1, "
                                  "\"links\": 2}]}"),
      std::runtime_error);
}

// --- Empty-plan bit-identity -------------------------------------------------

TEST(MigrationEngine, EmptyPlanIsBitIdenticalToDefaultScenario) {
  const wl::Workload workload = small_workload();
  for (const char* algo : {"NULB", "RISA"}) {
    Engine plain(Scenario::paper_defaults(), algo);
    const SimMetrics base = plain.run(workload, "t");

    Engine gated(Scenario::paper_defaults(), algo);
    const MigrationPlan empty;
    gated.set_migration_plan(&empty);
    const SimMetrics same = gated.run(workload, "t");
    EXPECT_EQ(metrics_fingerprint(base), metrics_fingerprint(same)) << algo;
    EXPECT_EQ(base.events_executed, same.events_executed) << algo;
    EXPECT_EQ(same.migrated, 0u);
    EXPECT_EQ(same.migration_tu, 0.0);
    EXPECT_EQ(same.interrack_vms_recovered, 0u);
  }
}

// --- Single-VM migration semantics -------------------------------------------

/// Two racks; rack 0's RAM fails before the only VM arrives, so NULB's
/// first-fit lands CPU/storage in rack 0 and RAM in rack 1 (both circuits
/// inter-rack).  After the repair, the first sweep must bring the VM home.
Scenario two_rack_scenario() {
  Scenario s = Scenario::paper_defaults();
  s.cluster.racks = 2;
  // Box layout (2/2/2 per rack): rack 0 = CPU {0,1}, RAM {2,3}, STO {4,5};
  // rack 1 starts at box 6.
  s.faults.actions.push_back(fail_box_at(2, 0.0));
  s.faults.actions.push_back(fail_box_at(3, 0.0));
  s.faults.actions.push_back(repair_box_at(2, 10.0));
  s.faults.actions.push_back(repair_box_at(3, 10.0));
  return s;
}

wl::Workload one_vm_workload() {
  wl::VmRequest vm = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  vm.arrival = 1.0;
  return {vm};
}

TEST(MigrationEngine, SweepRecoversInterRackVmAfterRepair) {
  Scenario scenario = two_rack_scenario();
  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/1);
  scenario.migrations.fixed_cost_tu = 5.0;
  scenario.migrations.charge_transfer = false;

  Engine engine(scenario, "NULB");
  Timeline timeline;
  engine.set_timeline(&timeline);
  const SimMetrics m = engine.run(one_vm_workload(), "t");

  EXPECT_EQ(m.placed, 1u);
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_EQ(m.killed, 0u);
  EXPECT_EQ(m.inter_rack_placements, 1u);  // the admission was inter-rack
  EXPECT_EQ(m.migrated, 1u);
  EXPECT_EQ(m.interrack_vms_recovered, 1u);
  EXPECT_DOUBLE_EQ(m.migration_tu, 5.0);
  // The departure instant is preserved: arrival 1 + lifetime 1000.
  EXPECT_DOUBLE_EQ(m.horizon_tu, 1001.0);
  // The timeline's migrated census steps from 0 to 1 at the sweep.
  bool saw_migration = false;
  for (const TimelinePoint& p : timeline.points()) {
    if (p.migrated_total > 0) {
      saw_migration = true;
      EXPECT_GE(p.time, 50.0);
    }
  }
  EXPECT_TRUE(saw_migration);
}

TEST(MigrationEngine, DoubleChargeWindowSettlesExactly) {
  // Reference runs: the same VM inter-rack for its whole life (faults, no
  // migration) and intra-rack for its whole life (no faults at all).  The
  // migrated run's duration-proportional energy must decompose as
  //   old (inter) circuits charged [1, 55]  ->  54/1000 of the inter run,
  //   new (intra) circuits charged [50, 1001] -> 951/1000 of the intra run,
  // and the one-time switching energy as the sum of both establishments.
  const wl::Workload workload = one_vm_workload();

  Engine inter_engine(two_rack_scenario(), "NULB");
  const SimMetrics inter = inter_engine.run(workload, "t");
  ASSERT_EQ(inter.inter_rack_placements, 1u);

  Scenario intra_scenario = Scenario::paper_defaults();
  intra_scenario.cluster.racks = 2;
  Engine intra_engine(intra_scenario, "NULB");
  const SimMetrics intra = intra_engine.run(workload, "t");
  ASSERT_EQ(intra.inter_rack_placements, 0u);

  Scenario scenario = two_rack_scenario();
  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/1);
  scenario.migrations.fixed_cost_tu = 5.0;
  scenario.migrations.charge_transfer = false;
  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");
  ASSERT_EQ(m.migrated, 1u);

  const double old_frac = (49.0 + 5.0) / 1000.0;   // held [1,50] + 5 cost
  const double new_frac = 951.0 / 1000.0;          // held [50,1001]
  EXPECT_NEAR(m.energy.switch_trimming_j,
              inter.energy.switch_trimming_j * old_frac +
                  intra.energy.switch_trimming_j * new_frac,
              1e-9 * inter.energy.switch_trimming_j);
  EXPECT_NEAR(m.energy.transceiver_j,
              inter.energy.transceiver_j * old_frac +
                  intra.energy.transceiver_j * new_frac,
              1e-9 * inter.energy.transceiver_j);
  EXPECT_NEAR(m.energy.switch_switching_j,
              inter.energy.switch_switching_j +
                  intra.energy.switch_switching_j,
              1e-12 * inter.energy.switch_switching_j);
}

TEST(MigrationEngine, CostLongerThanRemainingHoldSkipsTheMove) {
  // A cost window outlasting the lease must leave the VM untouched.
  Scenario scenario = two_rack_scenario();
  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/10);
  scenario.migrations.fixed_cost_tu = 10000.0;  // > the whole lifetime
  scenario.migrations.charge_transfer = false;

  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(one_vm_workload(), "t");
  EXPECT_EQ(m.migrated, 0u);
  EXPECT_EQ(m.migration_tu, 0.0);
  EXPECT_DOUBLE_EQ(m.horizon_tu, 1001.0);
}

TEST(MigrationEngine, SkipWhileDegradedWaitsForRepair) {
  // Repair only lands at t=500; a degraded-gated plan must not migrate in
  // the failure window even though sweeps fire there.
  Scenario scenario = two_rack_scenario();
  scenario.faults.actions[2].at_time = 500.0;  // repairs
  scenario.faults.actions[3].at_time = 500.0;
  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/1);
  scenario.migrations.charge_transfer = false;
  scenario.migrations.skip_while_degraded = true;

  Engine engine(scenario, "NULB");
  Timeline timeline;
  engine.set_timeline(&timeline);
  const SimMetrics m = engine.run(one_vm_workload(), "t");
  EXPECT_EQ(m.migrated, 1u);
  for (const TimelinePoint& p : timeline.points()) {
    if (p.migrated_total > 0) EXPECT_GE(p.time, 500.0);
  }
}

TEST(MigrationEngine, PartialReplaceFailureLeavesOldPlacementIntact) {
  // Regression: a migration attempt whose CPU-RAM circuit establishes but
  // whose RAM-STO circuit fails must roll back ONLY the circuits the
  // attempt opened.  (An early version of Allocator::commit's network
  // rollback tore down every circuit of the VM -- including the live old
  // placement's -- silently releasing its bandwidth.)
  //
  // Setup: single uplinks of 24 Gb/s.  VM A (10 Gb/s CPU-RAM + 4 Gb/s
  // RAM-STO) is forced inter-rack by a transient RAM failure; VM B then
  // parks 14 Gb/s on rack 0's first RAM box uplink.  A's re-place targets
  // that RAM box: its CPU-RAM circuit fills the uplink to exactly 24,
  // then RAM-STO (4 more) fails -- the partial-failure path.
  Scenario scenario = two_rack_scenario();
  scenario.fabric.links_per_box = 1;
  scenario.fabric.links_per_rack = 1;
  scenario.fabric.link_capacity = gbps(24.0);
  scenario.fabric.channel_rate = gbps(1.0);

  wl::Workload workload;
  wl::VmRequest a = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  a.arrival = 1.0;
  wl::VmRequest b = toy_vm(1, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  b.arrival = 20.0;  // after the repair: lands intra-rack on RAM box 2
  // C arrives after the failed sweep and needs 5 Gb/s on the CPU box 0
  // uplink, which A+B fill to 20 of 24: it must DROP.  If the rollback
  // leaked A's old circuits, the freed bandwidth admits C instead.
  wl::VmRequest c = toy_vm(2, 4, 8.0, 128.0, /*lifetime=*/10.0);
  c.arrival = 60.0;
  workload.push_back(a);
  workload.push_back(b);
  workload.push_back(c);

  // The attempt must fail, leaving the run bit-identical to the same
  // scenario without any migration plan (bandwidth held to departure).
  Engine plain(scenario, "NULB");
  const SimMetrics base = plain.run(workload, "t");
  ASSERT_EQ(base.inter_rack_placements, 1u);
  ASSERT_EQ(base.dropped, 1u);  // C cannot route its CPU-RAM circuit

  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/10);
  scenario.migrations.fixed_cost_tu = 5.0;
  scenario.migrations.charge_transfer = false;
  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.migrated, 0u);
  EXPECT_EQ(m.migration_tu, 0.0);
  EXPECT_EQ(metrics_fingerprint(m), metrics_fingerprint(base));
}

TEST(MigrationEngine, ScheduleSurvivesKillRetryGapsWithNothingLive) {
  // Regression: a sweep firing while every VM is dead but a RETRY is still
  // in flight must keep the schedule alive -- the re-placed-after-failure
  // stragglers are exactly what migration exists to recover.
  //
  // Timeline: VM admitted inter-rack at t=1 (rack 0 RAM down until t=200),
  // its CPU box fails at t=20 (kill), retry delay 100 re-places it at
  // t=120 -- still inter-rack (rack 0 RAM remains down).  Sweeps at 50 and
  // 100 fire with zero live VMs; the t=150 sweep must still happen and
  // bring the VM intra-rack (into rack 1, around the offline boxes).
  Scenario scenario = Scenario::paper_defaults();
  scenario.cluster.racks = 2;
  scenario.faults.actions.push_back(fail_box_at(2, 0.0));
  scenario.faults.actions.push_back(fail_box_at(3, 0.0));
  scenario.faults.actions.push_back(fail_box_at(0, 20.0));
  scenario.faults.actions.push_back(repair_box_at(2, 200.0));
  scenario.faults.actions.push_back(repair_box_at(3, 200.0));
  scenario.faults.retry.max_attempts = 1;
  scenario.faults.retry.delay_tu = 100.0;
  scenario.migrations = defrag_plan(/*period=*/50.0, 1, /*total=*/10);
  scenario.migrations.fixed_cost_tu = 5.0;
  scenario.migrations.charge_transfer = false;

  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(one_vm_workload(), "t");
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.retry_placed, 1u);
  // t=150: CPU-RAM reunited in rack 1 (storage stays behind, score 3 -> 1);
  // t=200: the rack-0 repairs land first, so the next sweep pulls the
  // whole VM home (score 1 -> 0).  Without the pending-retry condition the
  // t=50 sweep would have ended the schedule with zero migrations.
  EXPECT_EQ(m.migrated, 2u);
  EXPECT_EQ(m.interrack_vms_recovered, 1u);
}

TEST(MigrationEngine, DoomedCandidatesDoNotBurnTheSweepBudget) {
  // Regression: the gather loop must filter candidates whose remaining
  // hold cannot outlast their migration cost; otherwise the worst-spread
  // doomed VM soaks up the per-sweep attempt and an eligible straggler
  // behind it is never tried.
  //
  // A (index 0) and B (index 1) are both forced inter-rack; at the single
  // sweep (t=50) A has 11 tu left against a 20 tu cost while B has 952.
  // With per_sweep_budget=1 the sweep must move B, not stall on A.
  Scenario scenario = two_rack_scenario();
  scenario.migrations = defrag_plan(/*period=*/10000.0, 1, /*total=*/10);
  scenario.migrations.first_sweep_at = 50.0;  // exactly one effective sweep
  scenario.migrations.fixed_cost_tu = 20.0;
  scenario.migrations.charge_transfer = false;

  wl::Workload workload;
  wl::VmRequest a = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/60.0);
  a.arrival = 1.0;  // departs at 61: only 11 tu left at the sweep
  wl::VmRequest b = toy_vm(1, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  b.arrival = 2.0;
  workload.push_back(a);
  workload.push_back(b);

  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.inter_rack_placements, 2u);
  EXPECT_EQ(m.migrated, 1u);
  EXPECT_EQ(m.interrack_vms_recovered, 1u);
  EXPECT_DOUBLE_EQ(m.migration_tu, 20.0);
}

// --- Budgets and accounting under churn --------------------------------------

TEST(MigrationEngine, BudgetsBoundCommittedMigrations) {
  const wl::Workload workload = small_workload(400, 5);
  Scenario scenario = Scenario::paper_defaults();
  scenario.migrations = defrag_plan(/*period=*/40.0, 2, /*total=*/7);

  // NULB fragments by construction, so the budget must be exhausted.
  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.migrated, 7u);
  EXPECT_LE(m.interrack_vms_recovered, m.migrated);
  EXPECT_GT(m.migration_tu, 0.0);
  // Migration never disturbs the admission accounting identity.
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
}

TEST(MigrationEngine, ReusedEngineMigrationRunsAreBitReproducible) {
  const wl::Workload workload = small_workload(250, 21);
  Scenario scenario = Scenario::paper_defaults();
  scenario.migrations = defrag_plan(/*period=*/60.0, 4, /*total=*/50);

  Engine engine(scenario, "NULB");
  const SimMetrics m1 = engine.run(workload, "t");
  const MigrationPlan empty;
  engine.set_migration_plan(&empty);
  const SimMetrics clean = engine.run(workload, "t");
  engine.set_migration_plan(nullptr);
  const SimMetrics m2 = engine.run(workload, "t");

  EXPECT_GT(m1.migrated, 0u);
  EXPECT_EQ(metrics_fingerprint(m1), metrics_fingerprint(m2));
  EXPECT_EQ(m1.migrated, m2.migrated);
  EXPECT_EQ(m1.migration_tu, m2.migration_tu);
  EXPECT_EQ(m1.interrack_vms_recovered, m2.interrack_vms_recovered);

  Engine fresh(Scenario::paper_defaults(), "NULB");
  EXPECT_EQ(metrics_fingerprint(clean),
            metrics_fingerprint(fresh.run(workload, "t")));
  EXPECT_EQ(clean.migrated, 0u);
}

// --- Sweep integration -------------------------------------------------------

SweepSpec migration_matrix_spec() {
  SweepSpec spec;
  spec.scenarios = {{"paper", Scenario::paper_defaults()}};
  spec.workloads = {WorkloadSpec::synthetic(300)};
  spec.seeds = {42};
  spec.algorithms = {"NULB", "NALB", "RISA", "RISA-BF"};

  // Fault churn underneath the defrag: an MTBF process plus retries.
  MtbfSpec mtbf;
  mtbf.mtbf_tu = 400.0;
  mtbf.mttr_tu = 150.0;
  mtbf.seed = 99;
  mtbf.horizon_tu = 2500.0;
  mtbf.num_boxes = Scenario::paper_defaults().cluster.total_boxes();
  FaultPlan faults = compile_mtbf_plan(mtbf);
  faults.retry.max_attempts = 2;
  faults.retry.delay_tu = 12.0;
  spec.fault_plans = {{"mtbf", faults}};

  MigrationPlan defrag = defrag_plan(/*period=*/80.0, 4, /*total=*/200);
  spec.migration_plans = {{"none", MigrationPlan{}}, {"defrag", defrag}};
  return spec;
}

TEST(MigrationSweep, MigrationAxisExpandsCellsAndLabelsResults) {
  const SweepSpec spec = migration_matrix_spec();
  ASSERT_EQ(spec.cell_count(), 1u * 1u * 1u * 1u * 2u * 4u);
  EXPECT_EQ(spec.cell_index(0, 0, 0, 0, 1, 2), 4u + 2u);
  // The five-axis (fault) form still addresses migration index 0.
  EXPECT_EQ(spec.cell_index(0, 0, 0, 0, 3), 3u);
  const auto results = SweepRunner(2).run(spec);
  ASSERT_EQ(results.size(), 8u);
  std::uint64_t migrated = 0;
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.migration_plan, r.migration_index == 0 ? "none" : "defrag");
    EXPECT_EQ(r.fault_plan, "mtbf");
    if (r.migration_index == 0) {
      EXPECT_EQ(r.metrics.migrated, 0u);
    } else {
      migrated += r.metrics.migrated;
    }
  }
  // The fragmenting baselines must actually defragment.
  EXPECT_GT(migrated, 0u);
}

// The headline determinism contract extended to migrations: a nonempty
// fault+migration matrix yields bit-identical metrics -- including the
// migration counters outside the frozen fingerprint -- at 1 and 8 threads.
TEST(MigrationSweep, FaultMigrationMatrixIsDeterministicAcrossThreadCounts) {
  const SweepSpec spec = migration_matrix_spec();
  const auto serial = SweepRunner(1).run(spec);
  const auto threaded = SweepRunner(8).run(spec);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(serial[i].metrics),
              metrics_fingerprint(threaded[i].metrics))
        << "cell " << i;
    EXPECT_EQ(serial[i].metrics.migrated, threaded[i].metrics.migrated);
    EXPECT_EQ(serial[i].metrics.migration_tu,
              threaded[i].metrics.migration_tu);
    EXPECT_EQ(serial[i].metrics.interrack_vms_recovered,
              threaded[i].metrics.interrack_vms_recovered);
    EXPECT_EQ(serial[i].metrics.killed, threaded[i].metrics.killed);
    EXPECT_EQ(serial[i].metrics.events_executed,
              threaded[i].metrics.events_executed);
  }
}

TEST(MigrationSweep, EmptyMigrationAxisKeepsLegacyCellIndexing) {
  SweepSpec spec = migration_matrix_spec();
  spec.migration_plans.clear();
  ASSERT_EQ(spec.cell_count(), 4u);
  EXPECT_EQ(spec.cell_index(0, 0, 0, 3), 3u);
  const auto results = SweepRunner(1).run(spec);
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.migration_plan, "none");
    EXPECT_EQ(r.metrics.migrated, 0u);
  }
}

}  // namespace
}  // namespace risa::sim
