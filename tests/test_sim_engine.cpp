// Simulation engine: end-to-end runs, conservation, determinism, metric
// plausibility.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

wl::Workload small_workload(std::size_t n = 150, std::uint64_t seed = 42) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, seed);
}

TEST(Engine, RunAccountsForEveryVm) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  const SimMetrics m = engine.run(small_workload(), "test");
  EXPECT_EQ(m.total_vms, 150u);
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
  EXPECT_GT(m.horizon_tu, 6300.0);  // at least one full lifetime
}

TEST(Engine, ClusterAndFabricRestoredAfterRun) {
  Engine engine(Scenario::paper_defaults(), "NULB");
  (void)engine.run(small_workload(), "test");
  // Every placement departed within the horizon; the run itself asserts
  // invariants, and the stack must be back to pristine.
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(engine.cluster().total_available(t),
              engine.cluster().total_capacity(t));
  }
  EXPECT_EQ(engine.fabric().intra_allocated(), 0);
  EXPECT_EQ(engine.fabric().inter_allocated(), 0);
}

TEST(Engine, DeterministicAcrossRuns) {
  const wl::Workload workload = small_workload();
  Engine a(Scenario::paper_defaults(), "RISA");
  Engine b(Scenario::paper_defaults(), "RISA");
  const SimMetrics ma = a.run(workload, "t");
  const SimMetrics mb = b.run(workload, "t");
  EXPECT_EQ(ma.placed, mb.placed);
  EXPECT_EQ(ma.inter_rack_placements, mb.inter_rack_placements);
  EXPECT_DOUBLE_EQ(ma.avg_utilization.cpu(), mb.avg_utilization.cpu());
  EXPECT_DOUBLE_EQ(ma.avg_optical_power_w, mb.avg_optical_power_w);
  EXPECT_DOUBLE_EQ(ma.horizon_tu, mb.horizon_tu);
}

TEST(Engine, RunIsRepeatableOnSameEngine) {
  // run() resets the stack, so back-to-back runs are independent.
  const wl::Workload workload = small_workload();
  Engine engine(Scenario::paper_defaults(), "RISA-BF");
  const SimMetrics m1 = engine.run(workload, "t");
  const SimMetrics m2 = engine.run(workload, "t");
  EXPECT_EQ(m1.placed, m2.placed);
  EXPECT_DOUBLE_EQ(m1.avg_optical_power_w, m2.avg_optical_power_w);
}

TEST(Engine, LatencySamplesComeFromTheTwoPaperConstants) {
  Engine engine(Scenario::paper_defaults(), "NULB");
  const SimMetrics m = engine.run(small_workload(400), "t");
  ASSERT_EQ(m.cpu_ram_latency_ns.count(), m.placed);
  EXPECT_GE(m.cpu_ram_latency_ns.min(), 110.0);
  EXPECT_LE(m.cpu_ram_latency_ns.max(), 330.0);
  // The mean must be the mixture 110 + 220 * inter_fraction over placed VMs.
  const double f = static_cast<double>(m.inter_rack_placements) /
                   static_cast<double>(m.placed);
  EXPECT_NEAR(m.cpu_ram_latency_ns.mean(), 110.0 + 220.0 * f, 1e-9);
}

TEST(Engine, UtilizationsAreWithinPhysicalBounds) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  const SimMetrics m = engine.run(small_workload(500), "t");
  for (ResourceType t : kAllResources) {
    EXPECT_GE(m.avg_utilization[t], 0.0);
    EXPECT_LE(m.avg_utilization[t], 1.0);
    EXPECT_GE(m.peak_utilization[t], m.avg_utilization[t]);
    EXPECT_LE(m.peak_utilization[t], 1.0);
  }
  EXPECT_GE(m.avg_intra_net_utilization, 0.0);
  EXPECT_LE(m.peak_intra_net_utilization, 1.0);
  EXPECT_GT(m.avg_optical_power_w, 0.0);
  EXPECT_GT(m.scheduler_exec_seconds, 0.0);
}

TEST(Engine, EnergyDecompositionSumsToTotal) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  const SimMetrics m = engine.run(small_workload(300), "t");
  const double sum = m.energy.switch_switching_j + m.energy.switch_trimming_j +
                     m.energy.transceiver_j;
  EXPECT_NEAR(m.energy.total_j(), sum, 1e-9);
  EXPECT_NEAR(m.avg_optical_power_w, sum / m.horizon_tu, 1e-9);
  // Trimming dominates switching (see photonics tests).
  EXPECT_GT(m.energy.switch_trimming_j, m.energy.switch_switching_j * 1e5);
}

TEST(Engine, RunAllAlgorithmsCoversPaperOrder) {
  const auto runs = run_all_algorithms(Scenario::paper_defaults(),
                                       small_workload(100), "t");
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].algorithm, "NULB");
  EXPECT_EQ(runs[1].algorithm, "NALB");
  EXPECT_EQ(runs[2].algorithm, "RISA");
  EXPECT_EQ(runs[3].algorithm, "RISA-BF");
  for (const auto& m : runs) EXPECT_EQ(m.workload, "t");
}

TEST(Engine, EmptyWorkloadIsHarmless) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  const SimMetrics m = engine.run({}, "empty");
  EXPECT_EQ(m.total_vms, 0u);
  EXPECT_EQ(m.placed, 0u);
  EXPECT_DOUBLE_EQ(m.avg_optical_power_w, 0.0);
}

TEST(Engine, NegativeLifetimeRejectedBeforeAnyEvent) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  wl::Workload workload = small_workload(20);
  workload[7].lifetime = -1.0;
  EXPECT_THROW((void)engine.run(workload, "t"), std::invalid_argument);
  // The engine must not have mutated any state: the next run is clean.
  workload[7].lifetime = 1.0;
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
}

TEST(Engine, UnknownAlgorithmThrowsAtConstruction) {
  EXPECT_THROW(Engine(Scenario::paper_defaults(), "bogus"),
               std::invalid_argument);
}

TEST(Engine, ScenarioValidationRejectsBadLatency) {
  Scenario s = Scenario::paper_defaults();
  s.latency.inter_rack_ns = 10.0;  // below intra
  EXPECT_THROW(Engine(s, "RISA"), std::invalid_argument);
}

// Property sweep: on any seeded workload, RISA's headline dominance holds:
// fewer (or equal) CPU-RAM splits than NULB and NALB, and at most equal
// optical power.
class DominanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominanceTest, RisaSplitsAndPowerNeverExceedBaselines) {
  wl::SyntheticConfig cfg;
  cfg.count = 400;
  const wl::Workload workload = wl::generate_synthetic(cfg, GetParam());
  const auto runs =
      run_all_algorithms(Scenario::paper_defaults(), workload, "sweep");
  const SimMetrics& nulb = runs[0];
  const SimMetrics& nalb = runs[1];
  const SimMetrics& risa = runs[2];
  const SimMetrics& risa_bf = runs[3];

  EXPECT_LE(risa.inter_rack_placements, nulb.inter_rack_placements);
  EXPECT_LE(risa.inter_rack_placements, nalb.inter_rack_placements);
  EXPECT_LE(risa_bf.inter_rack_placements, nulb.inter_rack_placements);
  EXPECT_LE(risa.avg_optical_power_w, nulb.avg_optical_power_w * 1.001);
  EXPECT_LE(risa.cpu_ram_latency_ns.mean(),
            nulb.cpu_ram_latency_ns.mean() + 1e-9);
  // No algorithm drops at this light load.
  EXPECT_EQ(risa.dropped, 0u);
  EXPECT_EQ(nulb.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace risa::sim
