// The lifecycle-event subsystem (DESIGN.md §8): FaultPlan validation and
// JSON round-trip, scripted fail/repair/kill semantics on the merged DES
// stream, retry/requeue accounting, interval-based power settlement, the
// empty-plan bit-identity contract, and thread-count determinism of a
// fault+retry sweep matrix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "photonics/power_ledger.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

wl::Workload small_workload(std::size_t n = 300, std::uint64_t seed = 11) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, seed);
}

FaultAction fail_box_at(std::uint32_t box, double time) {
  FaultAction a;
  a.kind = FaultAction::Kind::Fail;
  a.at_time = time;
  a.box = box;
  return a;
}

FaultAction repair_box_at(std::uint32_t box, double time) {
  FaultAction a = fail_box_at(box, time);
  a.kind = FaultAction::Kind::Repair;
  return a;
}

// --- FaultPlan model ---------------------------------------------------------

TEST(FaultPlan, ValidateRejectsMalformedActions) {
  FaultAction both_triggers = fail_box_at(0, 10.0);
  both_triggers.after_admissions = 5;
  EXPECT_THROW(both_triggers.validate(), std::invalid_argument);

  FaultAction no_trigger;
  no_trigger.box = 0;
  EXPECT_THROW(no_trigger.validate(), std::invalid_argument);

  FaultAction both_victims = fail_box_at(0, 10.0);
  both_victims.random_boxes = 2;
  EXPECT_THROW(both_victims.validate(), std::invalid_argument);

  FaultAction no_victim;
  no_victim.at_time = 10.0;
  EXPECT_THROW(no_victim.validate(), std::invalid_argument);

  RetryPolicy zero_delay;
  zero_delay.max_attempts = 1;  // delay stays 0
  EXPECT_THROW(zero_delay.validate(), std::invalid_argument);

  FaultPlan ok;
  ok.actions.push_back(fail_box_at(3, 100.0));
  ok.retry.max_attempts = 2;
  ok.retry.delay_tu = 5.0;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_FALSE(ok.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, JsonRoundTripIsExact) {
  FaultPlan plan;
  plan.seed = 424242;
  plan.retry.max_attempts = 3;
  plan.retry.delay_tu = 12.625;
  plan.actions.push_back(fail_box_at(7, 123.5));
  plan.actions.push_back(repair_box_at(7, 456.75));
  FaultAction random_fail;
  random_fail.kind = FaultAction::Kind::Fail;
  random_fail.after_admissions = 1500;
  random_fail.random_boxes = 4;
  plan.actions.push_back(random_fail);

  const std::string json = fault_plan_json(plan);
  const FaultPlan parsed = parse_fault_plan_json(json);
  EXPECT_EQ(parsed, plan);

  // An empty plan round-trips too.
  EXPECT_EQ(parse_fault_plan_json(fault_plan_json(FaultPlan{})), FaultPlan{});
}

TEST(FaultPlan, JsonParserRejectsGarbage) {
  EXPECT_THROW((void)parse_fault_plan_json("{\"sede\": 1}"),
               std::runtime_error);  // typo key
  EXPECT_THROW((void)parse_fault_plan_json("{\"actions\": [{\"action\": "
                                           "\"explode\"}]}"),
               std::runtime_error);  // unknown action kind
  EXPECT_THROW((void)parse_fault_plan_json("{\"seed\": }"),
               std::runtime_error);  // missing value
  EXPECT_THROW((void)parse_fault_plan_json("{} trailing"),
               std::runtime_error);  // trailing content
  // Valid JSON, invalid plan (no trigger): validation runs on parse.
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": \"fail\", "
                                  "\"box\": 1}]}"),
      std::runtime_error);
  // 32-bit fields reject values that would silently wrap, and u64 parsing
  // rejects out-of-range doubles instead of casting them (UB).
  EXPECT_THROW(
      (void)parse_fault_plan_json("{\"actions\": [{\"action\": \"fail\", "
                                  "\"at_time\": 1, \"box\": 4294967296}]}"),
      std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan_json("{\"seed\": 1e300}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan_json("{\"seed\": -1}"),
               std::runtime_error);
}

TEST(FaultPlan, ZeroAdmissionThresholdIsRejected) {
  // "Fire before anything places" is a time trigger; an admission count of
  // zero would either fire one admission late or never (all-drop runs).
  FaultAction a;
  a.kind = FaultAction::Kind::Fail;
  a.after_admissions = 0;
  a.box = 1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.after_admissions = 1;
  EXPECT_NO_THROW(a.validate());
}

// --- Empty-plan bit-identity -------------------------------------------------

TEST(FaultEngine, EmptyPlanIsBitIdenticalToDefaultScenario) {
  const wl::Workload workload = small_workload();
  for (const char* algo : {"NULB", "RISA"}) {
    Engine plain(Scenario::paper_defaults(), algo);
    const SimMetrics base = plain.run(workload, "t");

    // Explicitly-installed empty plan: the lifecycle gate must stay off.
    Engine gated(Scenario::paper_defaults(), algo);
    const FaultPlan empty;
    gated.set_fault_plan(&empty);
    const SimMetrics same = gated.run(workload, "t");
    EXPECT_EQ(metrics_fingerprint(base), metrics_fingerprint(same)) << algo;
    EXPECT_EQ(base.events_executed, same.events_executed) << algo;
    EXPECT_EQ(same.killed, 0u);
    EXPECT_EQ(same.requeued, 0u);
    EXPECT_EQ(same.degraded_tu, 0.0);
  }
}

// --- Scripted fail/repair/kill semantics -------------------------------------

TEST(FaultEngine, TimedFailKillsResidentsAndSettlesEverything) {
  const wl::Workload workload = small_workload(400, 5);
  Scenario scenario = Scenario::paper_defaults();
  // Fail three CPU boxes early, repair them later; no retry.
  const double fail_t = 200.0;
  const double repair_t = 5000.0;
  for (std::uint32_t b : {0u, 1u, 2u}) {
    scenario.faults.actions.push_back(fail_box_at(b, fail_t));
    scenario.faults.actions.push_back(repair_box_at(b, repair_t));
  }

  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");

  // NULB packs the first boxes hardest, so failing boxes 0-2 at t=200 must
  // kill live residents.
  EXPECT_GT(m.killed, 0u);
  EXPECT_EQ(m.requeued, 0u);
  EXPECT_EQ(m.retry_placed, 0u);
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
  // Degraded window = [fail, repair] exactly (events exist at both ends;
  // the integral is a telescoping sum of inter-event gaps).
  EXPECT_NEAR(m.degraded_tu, repair_t - fail_t, 1e-6);
  // Engine::run's internal invariants already prove circuits/compute were
  // fully released (live_count == 0 + cluster/fabric checks); the cluster
  // must also have come back online.
  EXPECT_EQ(engine.cluster().offline_box_count(), 0u);
  // (No cross-run energy comparison here: offline boxes reshape the whole
  // placement pattern, which can outweigh the truncation refunds.  The
  // exact interval settlement is pinned by the single-VM test below and
  // the PowerLedgerInterval suite.)
  EXPECT_GT(m.energy.total_j(), 0.0);
}

TEST(FaultEngine, KilledVmsDepartureTombstonesDoNotFire) {
  // One long-lived VM placed at t=0, killed at t=10: its scheduled
  // departure (t=1000) must be skipped silently, and the engine's
  // accounting must balance.  The fault names the exact box via a dry run.
  wl::Workload workload;
  wl::VmRequest vm = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  vm.arrival = 0.0;
  workload.push_back(vm);

  // RISA places the first VM in rack 0; its CPU box is box 0 (the first
  // CPU box in (rack, type) layout order).
  Scenario scenario = Scenario::paper_defaults();
  scenario.faults.actions.push_back(fail_box_at(0, 10.0));
  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.placed, 1u);
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.dropped, 0u);
  // Horizon: the last *executed* event is the kill at t=10 (the tombstoned
  // departure at t=1000 does not advance time).
  EXPECT_DOUBLE_EQ(m.horizon_tu, 10.0);
  EXPECT_EQ(m.events_executed, 2u);  // arrival + box-fail (departure skipped)
  // Interval settlement: 10 of 1000 time units held -> 1% of the
  // holding energy of an unfaulted run of the same single VM.
  Engine plain(Scenario::paper_defaults(), "RISA");
  const SimMetrics base = plain.run(workload, "t");
  EXPECT_NEAR(m.energy.switch_trimming_j / base.energy.switch_trimming_j,
              10.0 / 1000.0, 1e-9);
  EXPECT_NEAR(m.energy.transceiver_j / base.energy.transceiver_j,
              10.0 / 1000.0, 1e-9);
  // Switching (one-time) energy is not refunded.
  EXPECT_DOUBLE_EQ(m.energy.switch_switching_j,
                   base.energy.switch_switching_j);
}

TEST(FaultEngine, RetryRequeuesKilledVmWithRemainingLifetime) {
  // VM killed at t=10 with 990 tu left; box repaired at t=20; retry delay
  // 15 lands the re-placement at t=25 -> departure at t=1015.
  wl::Workload workload;
  wl::VmRequest vm = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  vm.arrival = 0.0;
  workload.push_back(vm);

  Scenario scenario = Scenario::paper_defaults();
  scenario.faults.actions.push_back(fail_box_at(0, 10.0));
  scenario.faults.actions.push_back(repair_box_at(0, 20.0));
  scenario.faults.retry.max_attempts = 1;
  scenario.faults.retry.delay_tu = 15.0;

  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.placed, 1u);  // final-outcome accounting: placed once
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.requeued, 1u);
  EXPECT_EQ(m.retry_placed, 1u);
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_DOUBLE_EQ(m.horizon_tu, 25.0 + 990.0);
  EXPECT_NEAR(m.degraded_tu, 10.0, 1e-9);
  // Total charged interval = 10 (first epoch) + 990 (second) = the full
  // lifetime: energy must match the unfaulted single-placement run up to
  // the duplicated one-time terms (two establishments -> 2x switching).
  Engine plain(Scenario::paper_defaults(), "RISA");
  const SimMetrics base = plain.run(workload, "t");
  EXPECT_NEAR(m.energy.switch_trimming_j, base.energy.switch_trimming_j,
              base.energy.switch_trimming_j * 1e-12);
  EXPECT_NEAR(m.energy.switch_switching_j,
              2.0 * base.energy.switch_switching_j,
              base.energy.switch_switching_j * 1e-12);
}

TEST(FaultEngine, RetryBudgetExhaustionDropsUnplacedVms) {
  // Every storage box offline from t=0 -> nothing can place; with a retry
  // budget of 2 each VM consumes its retries then finally drops.
  Scenario scenario = Scenario::paper_defaults();
  Engine probe(scenario, "RISA");  // box-id source only
  scenario.faults.retry.max_attempts = 2;
  scenario.faults.retry.delay_tu = 1.0;
  for (BoxId id : probe.cluster().boxes_of_type(ResourceType::Storage)) {
    scenario.faults.actions.push_back(fail_box_at(id.value(), 0.0));
  }

  wl::Workload workload = small_workload(20, 3);
  for (auto& req : workload) req.arrival += 1.0;  // after the failures

  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.placed, 0u);
  EXPECT_EQ(m.dropped, m.total_vms);
  EXPECT_EQ(m.requeued, 2u * m.total_vms);  // both attempts consumed
  EXPECT_EQ(m.retry_placed, 0u);
  EXPECT_EQ(m.drops_by_reason.items().size(), 1u);
}

TEST(FaultEngine, AdmissionTriggeredFaultFiresOnThreshold) {
  const wl::Workload workload = small_workload(200, 9);
  Scenario scenario = Scenario::paper_defaults();
  FaultAction a;
  a.kind = FaultAction::Kind::Fail;
  a.after_admissions = 50;
  a.random_boxes = 3;
  scenario.faults.actions.push_back(a);
  scenario.faults.seed = 7;

  Engine engine(scenario, "NULB");
  Timeline timeline;
  engine.set_timeline(&timeline);
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_GT(m.degraded_tu, 0.0);
  // The timeline shows zero offline boxes until >= 50 placements, then the
  // failed count (3 random draws may collide, so 1..3).
  bool saw_degraded = false;
  for (const TimelinePoint& p : timeline.points()) {
    if (p.offline_boxes > 0) {
      saw_degraded = true;
      EXPECT_GE(p.placed_total, 50u);
      EXPECT_LE(p.offline_boxes, 3u);
    }
  }
  EXPECT_TRUE(saw_degraded);
}

TEST(FaultEngine, ReusedEngineFaultRunsAreBitReproducible) {
  // One engine alternating faulted and unfaulted runs: the unfaulted runs
  // must stay bit-identical to a fresh engine (no lifecycle state leaks),
  // and the faulted runs must reproduce themselves (fault RNG rewinds).
  const wl::Workload workload = small_workload(250, 21);
  Scenario faulted = Scenario::paper_defaults();
  FaultAction a;
  a.kind = FaultAction::Kind::Fail;
  a.after_admissions = 40;
  a.random_boxes = 4;
  faulted.faults.actions.push_back(a);
  faulted.faults.retry.max_attempts = 1;
  faulted.faults.retry.delay_tu = 3.0;

  Engine engine(faulted, "RISA");
  const SimMetrics f1 = engine.run(workload, "t");
  const FaultPlan empty;
  engine.set_fault_plan(&empty);
  const SimMetrics clean = engine.run(workload, "t");
  engine.set_fault_plan(nullptr);
  const SimMetrics f2 = engine.run(workload, "t");

  EXPECT_EQ(metrics_fingerprint(f1), metrics_fingerprint(f2));
  EXPECT_EQ(f1.killed, f2.killed);
  EXPECT_EQ(f1.requeued, f2.requeued);
  EXPECT_EQ(f1.degraded_tu, f2.degraded_tu);

  Engine fresh(Scenario::paper_defaults(), "RISA");
  EXPECT_EQ(metrics_fingerprint(clean),
            metrics_fingerprint(fresh.run(workload, "t")));
  EXPECT_EQ(clean.killed, 0u);
}

// --- Link faults -------------------------------------------------------------

TEST(LinkFaultEngine, DeadLinkKillsTraversingCircuitsAndRepairRestores) {
  // One long-lived VM placed at t=0 in rack 0 (RISA).  Failing every
  // uplink of its CPU box at t=10 must sever its CPU-RAM circuit and kill
  // it; the repairs at t=30 end the degraded window.
  wl::Workload workload;
  wl::VmRequest vm = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  vm.arrival = 0.0;
  workload.push_back(vm);

  Scenario scenario = Scenario::paper_defaults();
  Engine probe(scenario, "RISA");  // link-id source only
  for (LinkId id : probe.fabric().box_uplinks(BoxId{0})) {
    FaultAction fail;
    fail.kind = FaultAction::Kind::LinkFail;
    fail.at_time = 10.0;
    fail.link = id.value();
    scenario.faults.actions.push_back(fail);
    FaultAction repair = fail;
    repair.kind = FaultAction::Kind::LinkRepair;
    repair.at_time = 30.0;
    scenario.faults.actions.push_back(repair);
  }

  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(workload, "t");
  EXPECT_EQ(m.placed, 1u);
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.dropped, 0u);
  // Degraded window = [first link failure, repair] (failed links count).
  EXPECT_NEAR(m.degraded_tu, 30.0 - 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.horizon_tu, 30.0);
  EXPECT_EQ(engine.fabric().failed_link_count(), 0u);
  // Interval settlement: 10 of 1000 prepaid time units held.
  Engine plain(Scenario::paper_defaults(), "RISA");
  const SimMetrics base = plain.run(workload, "t");
  EXPECT_NEAR(m.energy.switch_trimming_j / base.energy.switch_trimming_j,
              10.0 / 1000.0, 1e-9);
}

TEST(LinkFaultEngine, KilledVmRequeuesUnderRetryPolicy) {
  wl::Workload workload;
  wl::VmRequest vm = toy_vm(0, 8, 16.0, 128.0, /*lifetime=*/1000.0);
  vm.arrival = 0.0;
  workload.push_back(vm);

  Scenario scenario = Scenario::paper_defaults();
  Engine probe(scenario, "RISA");
  for (LinkId id : probe.fabric().box_uplinks(BoxId{0})) {
    FaultAction fail;
    fail.kind = FaultAction::Kind::LinkFail;
    fail.at_time = 10.0;
    fail.link = id.value();
    scenario.faults.actions.push_back(fail);
  }
  scenario.faults.retry.max_attempts = 1;
  scenario.faults.retry.delay_tu = 5.0;

  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(workload, "t");
  // The retry at t=15 re-places the VM around the dead links (another CPU
  // box in the pool still has healthy uplinks) for its remaining 990 tu.
  EXPECT_EQ(m.killed, 1u);
  EXPECT_EQ(m.requeued, 1u);
  EXPECT_EQ(m.retry_placed, 1u);
  EXPECT_EQ(m.placed, 1u);
  EXPECT_DOUBLE_EQ(m.horizon_tu, 15.0 + 990.0);
}

TEST(LinkFaultEngine, RandomLinkDrawsAreSeededAndIdempotent) {
  const wl::Workload workload = small_workload(200, 9);
  Scenario scenario = Scenario::paper_defaults();
  FaultAction a;
  a.kind = FaultAction::Kind::LinkFail;
  a.at_time = 100.0;
  a.random_links = 5;
  scenario.faults.actions.push_back(a);
  scenario.faults.seed = 7;

  Engine engine(scenario, "NULB");
  const SimMetrics m1 = engine.run(workload, "t");
  const SimMetrics m2 = engine.run(workload, "t");
  EXPECT_EQ(metrics_fingerprint(m1), metrics_fingerprint(m2));
  EXPECT_EQ(m1.killed, m2.killed);
  EXPECT_GT(m1.degraded_tu, 0.0);  // links stay down to the end of the run
}

TEST(LinkFaultEngine, AdmissionTriggeredLinkFailActuallyFails) {
  // Regression: admission-triggered actions must map LinkFail to the
  // link-fail event kind (an early version reused the box Fail/Repair
  // mapping, turning the action into a repair no-op).
  const wl::Workload workload = small_workload(200, 9);
  Scenario scenario = Scenario::paper_defaults();
  FaultAction a;
  a.kind = FaultAction::Kind::LinkFail;
  a.after_admissions = 50;
  a.random_links = 8;
  scenario.faults.actions.push_back(a);
  scenario.faults.seed = 3;

  Engine engine(scenario, "NULB");
  const SimMetrics m = engine.run(workload, "t");
  // The links stay down for the rest of the run: the degraded integral
  // must accumulate over the remaining events.
  EXPECT_GT(m.degraded_tu, 0.0);
}

// --- MTBF-style stochastic fault compiler ------------------------------------

TEST(MtbfCompiler, CompilesAValidSortedPairedPlan) {
  MtbfSpec spec;
  spec.mtbf_tu = 100.0;
  spec.mttr_tu = 20.0;
  spec.seed = 4242;
  spec.horizon_tu = 1000.0;
  spec.num_boxes = 50;

  const FaultPlan plan = compile_mtbf_plan(spec);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.actions.empty());
  EXPECT_EQ(plan.actions.size() % 2, 0u);  // fail/repair pairs

  // Sorted by time; every fail has a later repair of the same box.
  double last_t = 0.0;
  std::size_t fails = 0;
  for (const FaultAction& a : plan.actions) {
    EXPECT_TRUE(a.time_triggered());
    EXPECT_GE(a.at_time, last_t);
    last_t = a.at_time;
    EXPECT_LT(a.box, spec.num_boxes);
    if (a.kind == FaultAction::Kind::Fail) {
      ++fails;
      EXPECT_LT(a.at_time, spec.horizon_tu);
      bool repaired = false;
      for (const FaultAction& b : plan.actions) {
        if (b.kind == FaultAction::Kind::Repair && b.box == a.box &&
            b.at_time > a.at_time) {
          repaired = true;
          break;
        }
      }
      EXPECT_TRUE(repaired) << "box " << a.box;
    }
  }
  // ~horizon/mtbf failures, with generous slack for the draw variance.
  EXPECT_GE(fails, 3u);
  EXPECT_LE(fails, 30u);

  // Deterministic per seed; different seeds diverge.
  EXPECT_EQ(compile_mtbf_plan(spec), plan);
  spec.seed = 4243;
  EXPECT_NE(compile_mtbf_plan(spec), plan);

  MtbfSpec bad = spec;
  bad.mtbf_tu = 0.0;
  EXPECT_THROW((void)compile_mtbf_plan(bad), std::invalid_argument);
}

TEST(MtbfCompiler, CompiledPlanDrivesTheEngine) {
  MtbfSpec spec;
  spec.mtbf_tu = 300.0;
  spec.mttr_tu = 100.0;
  spec.seed = 11;
  spec.horizon_tu = 2000.0;
  spec.num_boxes = Scenario::paper_defaults().cluster.total_boxes();

  Scenario scenario = Scenario::paper_defaults();
  scenario.faults = compile_mtbf_plan(spec);
  scenario.faults.retry.max_attempts = 2;
  scenario.faults.retry.delay_tu = 10.0;

  Engine engine(scenario, "RISA");
  const SimMetrics m = engine.run(small_workload(300, 5), "t");
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
  EXPECT_GT(m.degraded_tu, 0.0);
  EXPECT_EQ(engine.cluster().offline_box_count(), 0u);  // all repaired
}

// --- PowerLedger interval accounting ----------------------------------------

TEST(PowerLedgerInterval, UntruncatedSettlementIsANoOp) {
  auto stack = make_table3_stack();
  core::AllocContext ctx = stack->context();
  auto risa = core::make_allocator("RISA", ctx);
  auto placed = risa->try_place(toy_vm(1, 8, 8.0, 64.0));
  ASSERT_TRUE(placed.ok());

  Scenario scenario = Scenario::paper_defaults();
  net::Fabric& fabric = *ctx.fabric;
  phot::PowerLedger ledger(scenario.photonics, fabric);
  ledger.charge_vm(*ctx.circuits, VmId{1}, 500.0);
  const phot::VmEnergy before = ledger.totals();

  // Zero unheld tail: totals must be bit-for-bit untouched.
  ledger.refund_vm_truncation(*ctx.circuits, VmId{1}, 0.0);
  ledger.refund_vm_truncation(*ctx.circuits, VmId{1}, -3.0);
  EXPECT_EQ(ledger.totals().switch_trimming_j, before.switch_trimming_j);
  EXPECT_EQ(ledger.totals().transceiver_j, before.transceiver_j);
  EXPECT_EQ(ledger.totals().switch_switching_j, before.switch_switching_j);
  EXPECT_EQ(ledger.circuits_refunded(), 0u);
}

TEST(PowerLedgerInterval, TruncationRefundsExactlyTheUnheldTail) {
  auto stack = make_table3_stack();
  core::AllocContext ctx = stack->context();
  auto risa = core::make_allocator("RISA", ctx);
  auto placed = risa->try_place(toy_vm(1, 8, 8.0, 64.0));
  ASSERT_TRUE(placed.ok());

  Scenario scenario = Scenario::paper_defaults();
  phot::PowerLedger charged(scenario.photonics, *ctx.fabric);
  charged.charge_vm(*ctx.circuits, VmId{1}, 500.0);
  charged.refund_vm_truncation(*ctx.circuits, VmId{1}, 200.0);
  EXPECT_GT(charged.circuits_refunded(), 0u);

  // Reference: an independent ledger charging the unheld tail directly.
  phot::PowerLedger tail(scenario.photonics, *ctx.fabric);
  tail.charge_vm(*ctx.circuits, VmId{1}, 200.0);

  phot::PowerLedger full(scenario.photonics, *ctx.fabric);
  full.charge_vm(*ctx.circuits, VmId{1}, 500.0);

  EXPECT_NEAR(charged.totals().switch_trimming_j,
              full.totals().switch_trimming_j - tail.totals().switch_trimming_j,
              1e-12);
  EXPECT_NEAR(charged.totals().transceiver_j,
              full.totals().transceiver_j - tail.totals().transceiver_j,
              1e-9);
  // Switching energy untouched by the refund.
  EXPECT_EQ(charged.totals().switch_switching_j,
            full.totals().switch_switching_j);
}

// --- Sweep integration -------------------------------------------------------

SweepSpec fault_matrix_spec() {
  SweepSpec spec;
  spec.scenarios = {{"paper", Scenario::paper_defaults()}};
  spec.workloads = {WorkloadSpec::synthetic(300)};
  spec.seeds = {42};
  spec.algorithms = {"NULB", "NALB", "RISA", "RISA-BF"};

  FaultPlan faults;
  // Explicit early boxes (every algorithm touches box 0's rack early) plus
  // a seeded random draw, triggered after the 60th admission.
  for (std::uint32_t b : {0u, 1u, 2u}) {
    FaultAction a;
    a.kind = FaultAction::Kind::Fail;
    a.after_admissions = 60;
    a.box = b;
    faults.actions.push_back(a);
  }
  FaultAction rnd;
  rnd.kind = FaultAction::Kind::Fail;
  rnd.after_admissions = 60;
  rnd.random_boxes = 2;
  faults.actions.push_back(rnd);
  faults.seed = 99;

  FaultPlan faults_retry = faults;
  faults_retry.retry.max_attempts = 2;
  faults_retry.retry.delay_tu = 4.0;

  spec.fault_plans = {{"fail5", faults}, {"fail5+retry", faults_retry}};
  return spec;
}

TEST(FaultSweep, FaultAxisExpandsCellsAndLabelsResults) {
  const SweepSpec spec = fault_matrix_spec();
  ASSERT_EQ(spec.cell_count(), 2u * 4u);
  EXPECT_EQ(spec.cell_index(0, 0, 0, 1, 2), 4u + 2u);
  const auto results = SweepRunner(2).run(spec);
  ASSERT_EQ(results.size(), 8u);
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.fault_plan, r.fault_index == 0 ? "fail5" : "fail5+retry");
    EXPECT_GT(r.metrics.killed + r.metrics.placed, 0u);
  }
  // The retry half must requeue at least some victims.
  EXPECT_GT(results[4].metrics.requeued, 0u);
}

// The headline determinism contract extended to faults: a nonempty
// fault+retry matrix yields bit-identical metrics -- including the
// lifecycle counters outside the frozen fingerprint -- at 1 and 8 threads.
TEST(FaultSweep, FaultRetryMatrixIsDeterministicAcrossThreadCounts) {
  const SweepSpec spec = fault_matrix_spec();
  const auto serial = SweepRunner(1).run(spec);
  const auto threaded = SweepRunner(8).run(spec);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(serial[i].metrics),
              metrics_fingerprint(threaded[i].metrics))
        << "cell " << i;
    EXPECT_EQ(serial[i].metrics.killed, threaded[i].metrics.killed);
    EXPECT_EQ(serial[i].metrics.requeued, threaded[i].metrics.requeued);
    EXPECT_EQ(serial[i].metrics.retry_placed,
              threaded[i].metrics.retry_placed);
    EXPECT_EQ(serial[i].metrics.degraded_tu, threaded[i].metrics.degraded_tu);
    EXPECT_EQ(serial[i].metrics.events_executed,
              threaded[i].metrics.events_executed);
  }
}

TEST(FaultSweep, EmptyFaultAxisKeepsLegacyCellIndexing) {
  SweepSpec spec = fault_matrix_spec();
  spec.fault_plans.clear();
  ASSERT_EQ(spec.cell_count(), 4u);
  EXPECT_EQ(spec.cell_index(0, 0, 0, 3), 3u);
  const auto results = SweepRunner(1).run(spec);
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.fault_plan, "none");
    EXPECT_EQ(r.metrics.killed, 0u);
  }
}

}  // namespace
}  // namespace risa::sim
