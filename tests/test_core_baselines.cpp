// Extension baselines: RANDOM / FF / WF behaviours and their relationship
// to the paper's algorithms.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "workload/synthetic.hpp"

namespace risa::core {
namespace {

struct Stack {
  Stack()
      : cluster(topo::ClusterConfig{}),
        fabric(topo::ClusterConfig{}, net::FabricConfig{}),
        router(fabric),
        circuits(router) {}
  AllocContext context() {
    AllocContext ctx;
    ctx.cluster = &cluster;
    ctx.fabric = &fabric;
    ctx.router = &router;
    ctx.circuits = &circuits;
    return ctx;
  }
  topo::Cluster cluster;
  net::Fabric fabric;
  net::Router router;
  net::CircuitTable circuits;
};

TEST(Baselines, RegistryKnowsThem) {
  Stack stack;
  EXPECT_EQ(make_allocator("RANDOM", stack.context())->name(), "RANDOM");
  EXPECT_EQ(make_allocator("ff", stack.context())->name(), "FF");
  EXPECT_EQ(make_allocator("WF", stack.context())->name(), "WF");
  // The paper's canonical list stays untouched (figures iterate over it).
  EXPECT_EQ(algorithm_names().size(), 4u);
}

TEST(Baselines, FirstFitAlwaysPicksLowestIds) {
  Stack stack;
  FirstFitAllocator ff(stack.context());
  auto placed = ff.try_place(sim::toy_vm(0, 8, 16.0, 128.0));
  ASSERT_TRUE(placed.ok());
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(stack.cluster.box(placed->box(t)).index_in_type(), 0u);
  }
  EXPECT_FALSE(placed->inter_rack);  // all index-0 boxes live in rack 0
  ff.release(placed.value());
}

TEST(Baselines, WorstFitSpreadsAcrossEmptyBoxes) {
  Stack stack;
  WorstFitAllocator wf(stack.context());
  // First placement takes the first (all-equal) boxes; the second must go
  // to different, still-empty boxes.
  auto a = wf.try_place(sim::toy_vm(0, 8, 16.0, 128.0));
  auto b = wf.try_place(sim::toy_vm(1, 8, 16.0, 128.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (ResourceType t : kAllResources) {
    EXPECT_NE(a->box(t), b->box(t)) << name(t);
  }
}

TEST(Baselines, RandomIsSeedDeterministicAndFeasible) {
  Stack s1, s2;
  RandomAllocator r1(s1.context(), 42);
  RandomAllocator r2(s2.context(), 42);
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto a = r1.try_place(sim::toy_vm(i, 8, 16.0, 128.0));
    auto b = r2.try_place(sim::toy_vm(i, 8, 16.0, 128.0));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (ResourceType t : kAllResources) {
      EXPECT_EQ(a->box(t), b->box(t));
    }
  }
}

TEST(Baselines, AllDropCleanlyWhenATypeIsExhausted) {
  for (const char* algo : {"RANDOM", "FF", "WF"}) {
    Stack stack;
    for (BoxId id : stack.cluster.boxes_of_type(ResourceType::Storage)) {
      ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
    }
    auto allocator = make_allocator(algo, stack.context());
    auto placed = allocator->try_place(sim::toy_vm(0, 8, 16.0, 128.0));
    ASSERT_FALSE(placed.ok()) << algo;
    EXPECT_EQ(placed.error(), DropReason::NoComputeResources) << algo;
    EXPECT_EQ(stack.circuits.active_count(), 0u) << algo;
    EXPECT_EQ(stack.cluster.total_available(ResourceType::Cpu), 4608) << algo;
  }
}

TEST(Baselines, RisaBeatsAllBaselinesOnInterRackSplits) {
  // The extension study's point: load balancing alone (WF/RANDOM) does not
  // produce rack affinity -- RISA's advantage is structural.
  wl::SyntheticConfig cfg;
  cfg.count = 400;
  const wl::Workload workload = wl::generate_synthetic(cfg, 7);
  auto run = [&](const char* algo) {
    sim::Engine engine(sim::Scenario::paper_defaults(), algo);
    return engine.run(workload, "baselines");
  };
  const auto risa = run("RISA");
  for (const char* algo : {"RANDOM", "WF", "FF"}) {
    const auto m = run(algo);
    EXPECT_LE(risa.inter_rack_placements, m.inter_rack_placements) << algo;
    EXPECT_LE(risa.avg_optical_power_w, m.avg_optical_power_w * 1.001) << algo;
  }
  // RANDOM and WF scatter resources: the overwhelming majority of their
  // placements split CPU from RAM.
  EXPECT_GT(run("RANDOM").inter_rack_fraction(), 0.8);
  EXPECT_GT(run("WF").inter_rack_fraction(), 0.8);
}

}  // namespace
}  // namespace risa::core
