// Workload generators: the paper's synthetic process (§5.1) and the
// Azure-like subsets whose marginals must equal Figure 6 exactly.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "workload/azure.hpp"
#include "workload/characterize.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

namespace risa::wl {
namespace {

TEST(ArrivalModel, LifetimeScheduleMatchesPaper) {
  // "The VM life cycle begins at 6300 time units, with an increment of 360
  // time units for each set of 100 requests."
  const ArrivalModel m;
  EXPECT_DOUBLE_EQ(m.lifetime(0), 6300.0);
  EXPECT_DOUBLE_EQ(m.lifetime(99), 6300.0);
  EXPECT_DOUBLE_EQ(m.lifetime(100), 6660.0);
  EXPECT_DOUBLE_EQ(m.lifetime(250), 6300.0 + 2 * 360.0);
  EXPECT_DOUBLE_EQ(m.lifetime(2499), 6300.0 + 24 * 360.0);
}

TEST(Synthetic, GeneratesPaperRangesAndCount) {
  const Workload vms = generate_synthetic(SyntheticConfig{}, 7);
  ASSERT_EQ(vms.size(), 2500u);
  for (const VmRequest& vm : vms) {
    ASSERT_GE(vm.cores, 1);
    ASSERT_LE(vm.cores, 32);
    ASSERT_GE(vm.ram_mb, gb(1.0));
    ASSERT_LE(vm.ram_mb, gb(32.0));
    ASSERT_EQ(vm.storage_mb, gb(128.0));
    ASSERT_GT(vm.lifetime, 0.0);
  }
}

TEST(Synthetic, ArrivalsAreStrictlyIncreasingWithMeanGapTen) {
  const Workload vms = generate_synthetic(SyntheticConfig{}, 11);
  for (std::size_t i = 1; i < vms.size(); ++i) {
    ASSERT_GT(vms[i].arrival, vms[i - 1].arrival);
  }
  const double mean_gap = vms.back().arrival / static_cast<double>(vms.size());
  EXPECT_NEAR(mean_gap, 10.0, 0.8);
}

TEST(Synthetic, DeterministicPerSeed) {
  const Workload a = generate_synthetic(SyntheticConfig{}, 5);
  const Workload b = generate_synthetic(SyntheticConfig{}, 5);
  const Workload c = generate_synthetic(SyntheticConfig{}, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Synthetic, IdsAreDense) {
  const Workload vms = generate_synthetic(SyntheticConfig{}, 3);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_EQ(vms[i].id.value(), i);
  }
}

TEST(Azure, SpecTotalsMatchSubsetSizes) {
  EXPECT_EQ(azure_3000().total_vms(), 3000);
  EXPECT_EQ(azure_5000().total_vms(), 5000);
  EXPECT_EQ(azure_7500().total_vms(), 7500);
  EXPECT_EQ(azure_all_subsets().size(), 3u);
}

TEST(Azure, SplitSmallRamSumsExactly) {
  for (std::int64_t count : {0, 1, 2591, 4439, 6682}) {
    const auto split = split_small_ram(count);
    std::int64_t total = 0;
    for (const auto& [ram, n] : split) {
      EXPECT_GE(n, 0);
      total += n;
    }
    EXPECT_EQ(total, count) << "count=" << count;
  }
  Bin0Split bad;
  bad.frac_075 = 0.9;
  EXPECT_THROW(split_small_ram(10, bad), std::invalid_argument);
}

// The marginal counts decoded from Figure 6 must be reproduced exactly by
// the generator, for every subset.
struct SubsetCase {
  const char* label;
  std::map<std::int64_t, std::int64_t> cpu;  // cores -> count
};

class AzureMarginalTest : public ::testing::TestWithParam<int> {};

TEST_P(AzureMarginalTest, CpuAndRamMarginalsMatchFigure6) {
  const auto specs = azure_all_subsets();
  const AzureSpec& spec = specs[static_cast<std::size_t>(GetParam())];
  const Workload vms = generate_azure(spec, 123);
  ASSERT_EQ(static_cast<std::int64_t>(vms.size()), spec.total_vms());

  std::map<std::int64_t, std::int64_t> cpu_counts;
  std::map<Megabytes, std::int64_t> ram_counts;
  for (const VmRequest& vm : vms) {
    ++cpu_counts[vm.cores];
    ++ram_counts[vm.ram_mb];
    EXPECT_EQ(vm.storage_mb, gb(128.0));
  }
  for (const auto& [cores, count] : spec.cpu_marginal) {
    EXPECT_EQ(cpu_counts[cores], count) << spec.label << " cores=" << cores;
  }
  for (const auto& [ram_gb_value, count] : spec.ram_marginal) {
    EXPECT_EQ(ram_counts[gb(ram_gb_value)], count)
        << spec.label << " ram=" << ram_gb_value;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, AzureMarginalTest,
                         ::testing::Values(0, 1, 2));

TEST(Azure, Figure6HistogramCountsReproduce) {
  // Azure-3000, CPU panel: 10 bins over [1, 8] -> counts
  // {1326, 1269, 0, 0, 316, 0, 0, 0, 0, 89}; RAM panel: 10 bins over
  // [0.75, 56] -> {2591, 299, 15, 0, 17, 0, 0, 0, 0, 78}.
  const Workload vms = generate_azure(azure_3000(), 123);
  const Characterization ch = characterize(vms, 10);

  const std::vector<std::int64_t> cpu_expected{1326, 1269, 0, 0, 316,
                                               0,    0,    0, 0, 89};
  const std::vector<std::int64_t> ram_expected{2591, 299, 15, 0, 17,
                                               0,    0,   0,  0, 78};
  EXPECT_EQ(ch.cpu.counts(), cpu_expected);
  EXPECT_EQ(ch.ram.counts(), ram_expected);
}

TEST(Azure, RankCouplingPairsLargeRamWithLargeCpu) {
  // The 56 GB VMs must be 8-core (the real D13-like tail); rank coupling
  // guarantees it because 8-core VMs are the largest cores and 56 GB the
  // largest RAM, and counts(56GB)=78 <= counts(8 cores)=89.
  const Workload vms = generate_azure(azure_3000(), 123);
  for (const VmRequest& vm : vms) {
    if (vm.ram_mb == gb(56.0)) {
      EXPECT_EQ(vm.cores, 8);
    }
    if (vm.cores == 1) {
      EXPECT_LE(vm.ram_mb, gb(1.75));
    }
  }
}

TEST(Azure, ShuffleIsDeterministicPerSeed) {
  const Workload a = generate_azure(azure_3000(), 9);
  const Workload b = generate_azure(azure_3000(), 9);
  const Workload c = generate_azure(azure_3000(), 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Different seeds permute assignment order but keep marginals; spot-check
  // that orders differ.
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cores != c[i].cores) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Azure, SpecValidationCatchesMismatchedTotals) {
  AzureSpec spec = azure_3000();
  spec.cpu_marginal[0].second += 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Characterize, SummaryStatistics) {
  const Workload vms = generate_azure(azure_3000(), 1);
  const WorkloadSummary s = summarize(vms);
  EXPECT_EQ(s.count, 3000u);
  // Mean cores = (1326*1 + 1269*2 + 316*4 + 89*8) / 3000.
  EXPECT_NEAR(s.mean_cores, 5840.0 / 3000.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean_storage_gb, 128.0);
  EXPECT_DOUBLE_EQ(s.min_lifetime, 6300.0);
  EXPECT_GT(s.last_arrival, s.first_arrival);
}

TEST(TraceIo, RoundTripsExactly) {
  const Workload vms = generate_azure(azure_3000(), 77);
  std::stringstream ss;
  write_trace(ss, vms);
  const Workload back = read_trace(ss);
  EXPECT_EQ(vms, back);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_trace(empty), std::runtime_error);

  std::stringstream bad_header("a,b,c\n");
  EXPECT_THROW(read_trace(bad_header), std::runtime_error);

  std::stringstream bad_row(
      "vm_id,cores,ram_mb,storage_mb,arrival,lifetime\n1,-3,1,1,0,5\n");
  EXPECT_THROW(read_trace(bad_row), std::runtime_error);
}

TEST(SyntheticConfig, ValidationRejectsBadRanges) {
  SyntheticConfig cfg;
  cfg.count = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.max_cores = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.min_ram_gb = 8;
  cfg.max_ram_gb = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace risa::wl
