// Property test for the incremental rack-availability index: across
// randomized allocate/release/offline sequences, the index-backed
// INTRA_RACK_POOL / SUPER_RACK queries must return byte-identical results
// to a naive rescan of the per-rack aggregates (the pre-index
// implementation), and the cluster invariants (which cross-check the
// index's leaves and inner nodes) must hold throughout.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/risa.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/cluster.hpp"
#include "topology/config.hpp"

namespace risa::core {
namespace {

/// The pre-index implementation: rescan every rack per query.
std::vector<RackId> naive_pool(const topo::Cluster& cluster,
                               const UnitVector& units) {
  std::vector<RackId> pool;
  for (std::uint32_t r = 0; r < cluster.num_racks(); ++r) {
    const topo::Rack& rack = cluster.rack(RackId{r});
    bool fits = true;
    for (ResourceType t : kAllResources) {
      if (rack.max_available(t) < units[t]) {
        fits = false;
        break;
      }
    }
    if (fits) pool.push_back(RackId{r});
  }
  return pool;
}

PerResource<std::vector<RackId>> naive_super(const topo::Cluster& cluster,
                                             const UnitVector& units) {
  PerResource<std::vector<RackId>> lists;
  for (std::uint32_t r = 0; r < cluster.num_racks(); ++r) {
    const topo::Rack& rack = cluster.rack(RackId{r});
    for (ResourceType t : kAllResources) {
      if (rack.max_available(t) >= units[t]) {
        lists[t].push_back(RackId{r});
      }
    }
  }
  return lists;
}

std::vector<RackId> mask_to_vector(const RackSet& mask) {
  std::vector<RackId> out;
  mask.for_each([&](RackId r) { out.push_back(r); });
  return out;
}

/// Compare index-backed queries against the naive rescan for a demand.
void expect_queries_match(const topo::Cluster& cluster, const UnitVector& units) {
  RackSet mask;
  cluster.eligible_racks(units, mask);
  EXPECT_EQ(mask_to_vector(mask), naive_pool(cluster, units));

  const auto super = naive_super(cluster, units);
  for (ResourceType t : kAllResources) {
    cluster.eligible_racks(t, units[t], mask);
    EXPECT_EQ(mask_to_vector(mask), super[t]);
  }
}

/// Drive a cluster through a random allocate/release/offline/online churn,
/// cross-checking the index against the naive rescan along the way.
void run_churn(topo::ClusterConfig config, std::uint64_t seed,
               int steps, int queries_per_check) {
  topo::Cluster cluster(config);
  Rng rng(seed);
  std::vector<topo::BoxAllocation> live;
  std::vector<BoxId> offline;

  const auto random_units = [&] {
    UnitVector u{0, 0, 0};
    for (ResourceType t : kAllResources) {
      u[t] = rng.uniform_int(0, config.box_units(t) + 1);  // may exceed any box
    }
    return u;
  };

  for (int step = 0; step < steps; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 5) {
      // Allocate a random amount from a random box (may fail: fine).
      const BoxId box{static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
      const Units want = rng.uniform_int(1, config.box_units(cluster.box(box).type()));
      auto alloc = cluster.allocate(box, want);
      if (alloc.ok()) live.push_back(std::move(alloc.value()));
    } else if (op < 8) {
      if (!live.empty()) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        cluster.release(live[i]);
        live[i] = std::move(live.back());
        live.pop_back();
      }
    } else if (op == 8) {
      // Take a random box offline (its availability leaves the maxima).
      const BoxId box{static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
      if (!cluster.box(box).offline()) {
        cluster.set_box_offline(box, true);
        offline.push_back(box);
      }
    } else {
      if (!offline.empty()) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(offline.size()) - 1));
        cluster.set_box_offline(offline[i], false);
        offline[i] = offline.back();
        offline.pop_back();
      }
    }

    if (step % 16 == 0) {
      cluster.check_invariants();
      for (int q = 0; q < queries_per_check; ++q) {
        expect_queries_match(cluster, random_units());
      }
      // Boundary demands: zero (every rack fits) and above-capacity (none).
      expect_queries_match(cluster, UnitVector{0, 0, 0});
      expect_queries_match(
          cluster, UnitVector{config.box_units(ResourceType::Cpu) + 1,
                              config.box_units(ResourceType::Ram) + 1,
                              config.box_units(ResourceType::Storage) + 1});
    }
  }
  cluster.check_invariants();
}

TEST(IndexEquivalence, PaperClusterChurn) {
  run_churn(topo::ClusterConfig{}, 0xA11CE5EEDULL, 2000, 8);
}

TEST(IndexEquivalence, ToyClusterChurn) {
  run_churn(topo::ClusterConfig::toy_example(), 0xB0B5EEDULL, 1500, 8);
}

TEST(IndexEquivalence, UnevenClusterChurn) {
  topo::ClusterConfig cfg;
  cfg.racks = 33;  // non-power-of-two: exercises the phantom leaves padding
                   // the tree to base 64
  cfg.boxes_per_rack = PerResource<std::uint32_t>{3, 1, 2};
  cfg.bricks_per_box = 5;
  run_churn(cfg, 0xC0FFEE5EEDULL, 2000, 8);
}

TEST(IndexEquivalence, LargeClusterSpansMultipleShards) {
  topo::ClusterConfig cfg;
  cfg.racks = 2 * topo::RackAvailabilityIndex::kShardRacks + 17;  // 3 shards,
                                                                  // ragged tail
  run_churn(cfg, 0xD15C0DEULL, 800, 4);
}

// The RisaAllocator surface built on the index must match the naive rescan
// too, including through full placements (which mutate via commit/rollback).
TEST(IndexEquivalence, RisaAllocatorPoolMatchesNaive) {
  topo::ClusterConfig config;
  topo::Cluster cluster(config);
  net::Fabric fabric(config, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  RisaAllocator risa(ctx);

  Rng rng(0xF00D5EEDULL);
  std::vector<Placement> placements;
  for (int i = 0; i < 300; ++i) {
    wl::VmRequest vm;
    vm.id = VmId{static_cast<std::uint32_t>(i)};
    vm.cores = rng.uniform_int(1, 32);
    vm.ram_mb = static_cast<Megabytes>(rng.uniform_int(1, 64)) * 1024;
    vm.storage_mb = static_cast<Megabytes>(128) * 1024;
    vm.lifetime = 100.0;
    auto placed = risa.try_place(vm);
    if (placed.ok()) placements.push_back(std::move(placed.value()));
    if (!placements.empty() && rng.uniform_int(0, 3) == 0) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(placements.size()) - 1));
      risa.release(placements[j]);
      placements[j] = std::move(placements.back());
      placements.pop_back();
    }

    const UnitVector demand{rng.uniform_int(0, 128), rng.uniform_int(0, 128),
                            rng.uniform_int(0, 128)};
    EXPECT_EQ(risa.intra_rack_pool(demand), naive_pool(cluster, demand));
    const auto super = risa.super_rack(demand);
    const auto naive = naive_super(cluster, demand);
    for (ResourceType t : kAllResources) {
      EXPECT_EQ(super[t], naive[t]);
    }
  }
  cluster.check_invariants();
  fabric.check_invariants();
}

}  // namespace
}  // namespace risa::core
