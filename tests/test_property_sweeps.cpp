// Cross-cutting property sweeps: every algorithm (paper set + extension
// baselines) on every fabric depth must preserve the global invariants --
// conservation, clean teardown, bounded metrics, determinism.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "workload/azure.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

// (algorithm, racks_per_pod) sweep.
using SweepParam = std::tuple<const char*, std::uint32_t>;

class AlgorithmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgorithmSweep, ConservationAndBoundsHold) {
  const auto [algo, racks_per_pod] = GetParam();
  Scenario scenario = Scenario::paper_defaults();
  scenario.fabric.racks_per_pod = racks_per_pod;

  wl::SyntheticConfig cfg;
  cfg.count = 300;
  const wl::Workload workload = wl::generate_synthetic(cfg, 77);

  Engine engine(scenario, algo);
  const SimMetrics m = engine.run(workload, "sweep");

  // Conservation: every VM accounted, stack pristine after the run (the
  // engine itself asserts aggregates via check_invariants()).
  EXPECT_EQ(m.placed + m.dropped, m.total_vms);
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(engine.cluster().total_available(t),
              engine.cluster().total_capacity(t));
    EXPECT_GE(m.avg_utilization[t], 0.0);
    EXPECT_LE(m.peak_utilization[t], 1.0);
  }
  EXPECT_EQ(engine.fabric().intra_allocated(), 0);
  EXPECT_EQ(engine.fabric().inter_allocated(), 0);

  // Latency samples bounded by the model's constants.
  if (m.placed > 0) {
    EXPECT_GE(m.cpu_ram_latency_ns.min(), scenario.latency.intra_rack_ns);
    EXPECT_LE(m.cpu_ram_latency_ns.max(), scenario.latency.inter_pod_ns);
  }
  // Energy positive whenever something was placed.
  if (m.placed > 0) {
    EXPECT_GT(m.energy.total_j(), 0.0);
    EXPECT_GT(m.avg_optical_power_w, 0.0);
  }
  // Inter-rack counters consistent.
  EXPECT_LE(m.inter_rack_placements, m.any_pair_inter_rack);
  EXPECT_LE(m.any_pair_inter_rack, m.placed);
}

TEST_P(AlgorithmSweep, DeterministicAcrossIdenticalRuns) {
  const auto [algo, racks_per_pod] = GetParam();
  Scenario scenario = Scenario::paper_defaults();
  scenario.fabric.racks_per_pod = racks_per_pod;

  wl::SyntheticConfig cfg;
  cfg.count = 150;
  const wl::Workload workload = wl::generate_synthetic(cfg, 5);

  Engine a(scenario, algo);
  Engine b(scenario, algo);
  const SimMetrics ma = a.run(workload, "det");
  const SimMetrics mb = b.run(workload, "det");
  EXPECT_EQ(ma.placed, mb.placed);
  EXPECT_EQ(ma.dropped, mb.dropped);
  EXPECT_EQ(ma.inter_rack_placements, mb.inter_rack_placements);
  EXPECT_EQ(ma.fallback_placements, mb.fallback_placements);
  EXPECT_DOUBLE_EQ(ma.energy.total_j(), mb.energy.total_j());
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string label = std::get<0>(info.param);
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return label + (std::get<1>(info.param) == 0 ? "_twotier" : "_threetier");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndFabrics, AlgorithmSweep,
    ::testing::Combine(::testing::Values("NULB", "NALB", "RISA", "RISA-BF",
                                         "RANDOM", "FF", "WF"),
                       ::testing::Values(0u, 6u)),
    sweep_name);

// Azure determinism across the engine boundary: the same seed must yield
// the same workload AND the same simulation outcome end to end.
TEST(EndToEndDeterminism, AzureSubsetReproducesExactly) {
  const auto w1 = azure_workloads(kDefaultSeed);
  const auto w2 = azure_workloads(kDefaultSeed);
  ASSERT_EQ(w1[0].second, w2[0].second);

  Engine a(Scenario::paper_defaults(), "RISA-BF");
  Engine b(Scenario::paper_defaults(), "RISA-BF");
  const SimMetrics ma = a.run(w1[0].second, "Azure-3000");
  const SimMetrics mb = b.run(w2[0].second, "Azure-3000");
  EXPECT_EQ(ma.placed, mb.placed);
  EXPECT_DOUBLE_EQ(ma.avg_optical_power_w, mb.avg_optical_power_w);
  EXPECT_DOUBLE_EQ(ma.horizon_tu, mb.horizon_tu);
}

// Workload scaling property: doubling the subset size must not decrease
// placed count, and utilization must grow monotonically for RISA.
TEST(ScalingProperty, UtilizationGrowsAcrossAzureSubsets) {
  double last_sto_util = 0.0;
  std::uint64_t last_placed = 0;
  for (auto& [label, workload] : azure_workloads()) {
    Engine engine(Scenario::paper_defaults(), "RISA");
    const SimMetrics m = engine.run(workload, label);
    EXPECT_GE(m.placed, last_placed) << label;
    EXPECT_GT(m.avg_utilization.storage(), last_sto_util) << label;
    last_placed = m.placed;
    last_sto_util = m.avg_utilization.storage();
  }
}

}  // namespace
}  // namespace risa::sim
