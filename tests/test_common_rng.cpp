// Deterministic RNG: reproducibility, bounds, and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace risa {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(1, 32);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 32);
  }
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(6, 5), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValuesRoughlyEqually) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  }
  for (int c : counts) {
    // Expected 10000 each; 5-sigma band ~ +-500.
    EXPECT_NEAR(c, n / 8, 600);
  }
}

TEST(Rng, Uniform01Range) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  // The paper's arrival process: Poisson with mean inter-arrival 10 tu.
  Rng rng(17);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.25);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(19);
  for (double mean : {0.5, 4.0, 30.0, 100.0}) {
    double sum = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(w)];
  }
  EXPECT_NEAR(counts[0], n * 0.1, 350);
  EXPECT_NEAR(counts[1], n * 0.3, 500);
  EXPECT_NEAR(counts[2], n * 0.6, 600);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace risa
