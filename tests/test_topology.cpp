// Topology substrate: Table 1 shape, unit-granular allocation with brick
// accounting, incremental rack/cluster aggregates, snapshot/restore.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/cluster.hpp"
#include "topology/config.hpp"

namespace risa::topo {
namespace {

TEST(ClusterConfig, Table1Defaults) {
  const ClusterConfig cfg = ClusterConfig::paper_table1();
  EXPECT_EQ(cfg.racks, 18u);
  EXPECT_EQ(cfg.total_boxes_per_rack(), 6u);
  EXPECT_EQ(cfg.bricks_per_box, 8u);
  EXPECT_EQ(cfg.units_per_brick, 16);
  EXPECT_EQ(cfg.box_units(ResourceType::Cpu), 128);
  // 18 racks x 2 boxes x 128 units = 4608 units of each type.
  EXPECT_EQ(cfg.total_units(ResourceType::Cpu), 4608);
  EXPECT_EQ(cfg.total_units(ResourceType::Ram), 4608);
  EXPECT_EQ(cfg.total_units(ResourceType::Storage), 4608);
  // In physical terms: 18432 cores, 18432 GB RAM, 294912 GB storage.
  EXPECT_EQ(cfg.total_units(ResourceType::Cpu) * cfg.unit_scale.cores_per_cpu_unit,
            18432);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfig, ToyExampleShape) {
  const ClusterConfig cfg = ClusterConfig::toy_example();
  EXPECT_EQ(cfg.racks, 2u);
  // Toy boxes: 64 cores, 64 GB, 512 GB at 1 core / 1 GB / 64 GB units
  // (Tables 3-4 are single-core granular; see config.hpp).
  EXPECT_EQ(cfg.box_units(ResourceType::Cpu), 64);
  EXPECT_EQ(cfg.box_units(ResourceType::Ram), 64);
  EXPECT_EQ(cfg.box_units(ResourceType::Storage), 8);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfig, ValidationRejectsDegenerateShapes) {
  ClusterConfig cfg;
  cfg.racks = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.boxes_per_rack[ResourceType::Ram] = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.units_per_brick = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Cluster, BuildsPaperShape) {
  const Cluster cluster((ClusterConfig()));
  EXPECT_EQ(cluster.num_racks(), 18u);
  EXPECT_EQ(cluster.num_boxes(), 108u);
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(cluster.boxes_of_type(t).size(), 36u);
    EXPECT_EQ(cluster.total_capacity(t), 4608);
    EXPECT_EQ(cluster.total_available(t), 4608);
    EXPECT_DOUBLE_EQ(cluster.utilization(t), 0.0);
  }
  cluster.check_invariants();
}

TEST(Cluster, PerTypeOrderingIsRackMajor) {
  const Cluster cluster((ClusterConfig()));
  const auto& cpu_boxes = cluster.boxes_of_type(ResourceType::Cpu);
  for (std::size_t i = 0; i < cpu_boxes.size(); ++i) {
    const Box& box = cluster.box(cpu_boxes[i]);
    EXPECT_EQ(box.index_in_type(), i);
    EXPECT_EQ(box.rack().value(), i / 2);  // 2 CPU boxes per rack
    EXPECT_EQ(box.type(), ResourceType::Cpu);
  }
}

TEST(Cluster, AllocateReleasesRoundTripExactly) {
  Cluster cluster((ClusterConfig()));
  const BoxId target = cluster.boxes_of_type(ResourceType::Ram)[3];
  auto alloc = cluster.allocate(target, 100);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->units, 100);
  EXPECT_EQ(cluster.box(target).available_units(), 28);
  EXPECT_EQ(cluster.total_available(ResourceType::Ram), 4508);
  cluster.check_invariants();

  cluster.release(alloc.value());
  EXPECT_EQ(cluster.box(target).available_units(), 128);
  EXPECT_EQ(cluster.total_available(ResourceType::Ram), 4608);
  cluster.check_invariants();
}

TEST(Cluster, AllocationSpansBricksFirstFit) {
  Cluster cluster((ClusterConfig()));  // bricks of 16 units
  const BoxId target = cluster.boxes_of_type(ResourceType::Cpu)[0];
  auto alloc = cluster.allocate(target, 40);  // 16 + 16 + 8
  ASSERT_TRUE(alloc.ok());
  ASSERT_EQ(alloc->slices.size(), 3u);
  EXPECT_EQ(alloc->slices[0].units, 16);
  EXPECT_EQ(alloc->slices[1].units, 16);
  EXPECT_EQ(alloc->slices[2].units, 8);
  EXPECT_EQ(cluster.box(target).brick_available(2), 8);
  cluster.release(alloc.value());
  EXPECT_EQ(cluster.box(target).brick_available(2), 16);
}

TEST(Cluster, OverAllocationFailsWithoutSideEffects) {
  Cluster cluster((ClusterConfig()));
  const BoxId target = cluster.boxes_of_type(ResourceType::Cpu)[0];
  ASSERT_TRUE(cluster.allocate(target, 128).ok());
  auto more = cluster.allocate(target, 1);
  EXPECT_FALSE(more.ok());
  EXPECT_EQ(cluster.box(target).available_units(), 0);
  cluster.check_invariants();
}

TEST(Cluster, ZeroAndNegativeAllocationsRejected) {
  Cluster cluster((ClusterConfig()));
  const BoxId target = cluster.boxes_of_type(ResourceType::Cpu)[0];
  EXPECT_FALSE(cluster.allocate(target, 0).ok());
  EXPECT_FALSE(cluster.allocate(target, -5).ok());
}

TEST(Cluster, DoubleReleaseIsALogicError) {
  Cluster cluster((ClusterConfig()));
  const BoxId target = cluster.boxes_of_type(ResourceType::Cpu)[0];
  auto alloc = cluster.allocate(target, 128);
  ASSERT_TRUE(alloc.ok());
  cluster.release(alloc.value());
  EXPECT_THROW(cluster.release(alloc.value()), std::logic_error);
}

TEST(Cluster, ForeignReleaseIsALogicError) {
  Cluster cluster((ClusterConfig()));
  const BoxId a = cluster.boxes_of_type(ResourceType::Cpu)[0];
  const BoxId b = cluster.boxes_of_type(ResourceType::Cpu)[1];
  auto alloc = cluster.allocate(a, 4);
  ASSERT_TRUE(alloc.ok());
  BoxAllocation forged = alloc.value();
  forged.box = b;
  EXPECT_THROW(cluster.release(forged), std::logic_error);
  cluster.release(alloc.value());
}

TEST(Cluster, RackMaxAvailableTracksLargestBox) {
  Cluster cluster((ClusterConfig()));
  const RackId rack{0};
  EXPECT_EQ(cluster.rack(rack).max_available(ResourceType::Cpu), 128);
  const auto& cpu_boxes = cluster.boxes_of_type_in_rack(rack, ResourceType::Cpu);
  ASSERT_EQ(cpu_boxes.size(), 2u);
  auto a0 = cluster.allocate(cpu_boxes[0], 100);  // avail 28
  ASSERT_TRUE(a0.ok());
  EXPECT_EQ(cluster.rack(rack).max_available(ResourceType::Cpu), 128);
  auto a1 = cluster.allocate(cpu_boxes[1], 120);  // avail 8
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(cluster.rack(rack).max_available(ResourceType::Cpu), 28);
  EXPECT_EQ(cluster.rack(rack).total_available(ResourceType::Cpu), 36);
  cluster.release(a0.value());
  EXPECT_EQ(cluster.rack(rack).max_available(ResourceType::Cpu), 128);
  cluster.check_invariants();
}

TEST(Cluster, SnapshotRestoreRoundTrips) {
  Cluster cluster((ClusterConfig()));
  const BoxId t1 = cluster.boxes_of_type(ResourceType::Cpu)[5];
  const BoxId t2 = cluster.boxes_of_type(ResourceType::Storage)[7];
  ASSERT_TRUE(cluster.allocate(t1, 37).ok());
  ASSERT_TRUE(cluster.allocate(t2, 11).ok());
  const ClusterSnapshot snap = cluster.snapshot();

  ASSERT_TRUE(cluster.allocate(t1, 20).ok());
  cluster.restore(snap);
  EXPECT_EQ(cluster.box(t1).available_units(), 128 - 37);
  EXPECT_EQ(cluster.box(t2).available_units(), 128 - 11);
  cluster.check_invariants();
}

TEST(Cluster, ToyExampleCapacitiesMatchTable3) {
  const ClusterConfig cfg = ClusterConfig::toy_example();
  const Cluster cluster(cfg);
  // Table 3: CPU boxes 64 cores, RAM boxes 64 GB, storage boxes 512 GB.
  for (BoxId id : cluster.boxes_of_type(ResourceType::Cpu)) {
    EXPECT_EQ(cluster.box(id).capacity_units() *
                  cfg.unit_scale.cores_per_cpu_unit,
              64);
  }
  for (BoxId id : cluster.boxes_of_type(ResourceType::Storage)) {
    EXPECT_EQ(cluster.box(id).capacity_units() *
                  cfg.unit_scale.mb_per_storage_unit,
              gb(512.0));
  }
}

TEST(Cluster, BadIdsThrow) {
  Cluster cluster((ClusterConfig()));
  EXPECT_THROW((void)cluster.box(BoxId{9999}), std::out_of_range);
  EXPECT_THROW((void)cluster.box(BoxId::invalid()), std::out_of_range);
  EXPECT_THROW((void)cluster.rack(RackId{99}), std::out_of_range);
  EXPECT_THROW((void)cluster.allocate(BoxId{9999}, 1), std::out_of_range);
}

// Property sweep: random allocate/release sequences keep every invariant.
class ClusterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterPropertyTest, RandomChurnPreservesInvariants) {
  Rng rng(GetParam());
  Cluster cluster((ClusterConfig()));
  std::vector<BoxAllocation> live;
  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.uniform01() < 0.6;
    if (do_alloc) {
      const ResourceType t =
          kAllResources[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      const auto& boxes = cluster.boxes_of_type(t);
      const BoxId box =
          boxes[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(boxes.size()) - 1))];
      const Units want = rng.uniform_int(1, 16);
      auto alloc = cluster.allocate(box, want);
      if (alloc.ok()) live.push_back(std::move(alloc.value()));
    } else {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live.size()) - 1));
      cluster.release(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  cluster.check_invariants();
  for (const auto& a : live) cluster.release(a);
  cluster.check_invariants();
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(cluster.total_available(t), cluster.total_capacity(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace risa::topo
