// Integration: the paper's headline shapes must hold on the full-scale
// experiments (these run the real Figure 5/7/8/9/10 configurations; the
// whole suite stays under a few seconds because the simulator is fast).
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "workload/azure.hpp"

namespace risa::sim {
namespace {

class AzureShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(AzureShapeTest, HeadlineShapesHold) {
  const auto specs = wl::azure_all_subsets();
  const wl::AzureSpec& spec = specs[static_cast<std::size_t>(GetParam())];
  const wl::Workload workload = wl::generate_azure(spec, kDefaultSeed);
  const auto runs =
      run_all_algorithms(Scenario::paper_defaults(), workload, spec.label);
  const SimMetrics& nulb = runs[0];
  const SimMetrics& nalb = runs[1];
  const SimMetrics& risa = runs[2];
  const SimMetrics& risa_bf = runs[3];

  // Figure 7: RISA and RISA-BF have ZERO inter-rack assignments on every
  // Azure subset; the baselines sit in the tens of percent.
  EXPECT_EQ(risa.inter_rack_placements, 0u);
  EXPECT_EQ(risa_bf.inter_rack_placements, 0u);
  EXPECT_GT(nulb.inter_rack_fraction(), 0.30);
  EXPECT_GT(nalb.inter_rack_fraction(), 0.30);

  // §5.2: "no VMs were dropped during the scheduling process" -- holds for
  // the 3000/5000 subsets; the 7500 subset saturates storage in our
  // provisioning, equally for every algorithm (see EXPERIMENTS.md).
  EXPECT_EQ(risa.dropped, nulb.dropped);
  EXPECT_EQ(risa.dropped, nalb.dropped);
  if (GetParam() < 2) {
    EXPECT_EQ(risa.dropped, 0u);
  }

  // Figure 8: intra-rack utilization is algorithm-independent; inter-rack
  // is zero for the RISA family and positive for the baselines.
  EXPECT_NEAR(nulb.avg_intra_net_utilization, risa.avg_intra_net_utilization,
              0.01);
  EXPECT_NEAR(nalb.avg_intra_net_utilization, risa.avg_intra_net_utilization,
              0.01);
  EXPECT_DOUBLE_EQ(risa.avg_inter_net_utilization, 0.0);
  EXPECT_DOUBLE_EQ(risa_bf.avg_inter_net_utilization, 0.0);
  EXPECT_GT(nulb.avg_inter_net_utilization, 0.0);

  // Figure 9: the RISA family consumes materially less optical power
  // (paper: 33% less; require at least 20% to stay robust to seeds).
  EXPECT_LT(risa.avg_optical_power_w, nulb.avg_optical_power_w * 0.80);
  EXPECT_LT(risa_bf.avg_optical_power_w, nalb.avg_optical_power_w * 0.80);

  // Figure 10: RISA's CPU-RAM RTT is exactly the intra-rack constant; the
  // baselines are pushed up by their inter-rack share.
  EXPECT_DOUBLE_EQ(risa.cpu_ram_latency_ns.mean(), 110.0);
  EXPECT_DOUBLE_EQ(risa_bf.cpu_ram_latency_ns.mean(), 110.0);
  EXPECT_GT(nulb.cpu_ram_latency_ns.mean(), 170.0);
  EXPECT_GT(nalb.cpu_ram_latency_ns.mean(), 170.0);
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, AzureShapeTest, ::testing::Values(0, 1, 2));

TEST(SyntheticShape, Figure5OrderOfMagnitudeSeparation) {
  const wl::Workload workload = synthetic_workload();
  const auto runs =
      run_all_algorithms(Scenario::paper_defaults(), workload, "Synthetic");
  const SimMetrics& nulb = runs[0];
  const SimMetrics& nalb = runs[1];
  const SimMetrics& risa = runs[2];
  const SimMetrics& risa_bf = runs[3];

  // Paper: 255/255 vs 7/2.  Shape requirement: baselines in the hundreds,
  // RISA family an order of magnitude lower.
  EXPECT_GT(nulb.inter_rack_placements, 200u);
  EXPECT_GT(nalb.inter_rack_placements, 200u);
  EXPECT_LT(risa.inter_rack_placements, nulb.inter_rack_placements / 5);
  EXPECT_LT(risa_bf.inter_rack_placements, nalb.inter_rack_placements / 5);

  // §5.1 text: average utilization ~64.66 / 65.11 / 31.72 %.  Our drops are
  // a few percent, so require the right regime rather than the digits.
  EXPECT_NEAR(risa.avg_utilization.cpu(), 0.6466, 0.08);
  EXPECT_NEAR(risa.avg_utilization.ram(), 0.6511, 0.08);
  EXPECT_NEAR(risa.avg_utilization.storage(), 0.3172, 0.08);

  // Figure 11's ordering: NALB is the slowest, RISA and RISA-BF the
  // fastest.  (NULB vs RISA timing is asserted only weakly here because
  // CI noise at millisecond scale is real; the bench binary reports it.)
  EXPECT_GT(nalb.scheduler_exec_seconds, nulb.scheduler_exec_seconds);
  EXPECT_GT(nalb.scheduler_exec_seconds, risa.scheduler_exec_seconds);
  EXPECT_GT(nalb.scheduler_exec_seconds, risa_bf.scheduler_exec_seconds);
}

TEST(SyntheticShape, DropRatesStayMarginal) {
  const auto runs = run_all_algorithms(Scenario::paper_defaults(),
                                       synthetic_workload(), "Synthetic");
  for (const SimMetrics& m : runs) {
    EXPECT_LT(m.drop_fraction(), 0.05) << m.algorithm;
  }
}

}  // namespace
}  // namespace risa::sim
