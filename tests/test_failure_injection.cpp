// Failure injection: offline boxes and failed links must leave every
// aggregate consistent, steer the schedulers away, and allow clean release
// of resident state.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/risa.hpp"
#include "network/fabric.hpp"
#include "sim/experiments.hpp"
#include "topology/cluster.hpp"

namespace risa {
namespace {

TEST(BoxFailure, OfflineBoxLeavesAggregates) {
  topo::Cluster cluster((topo::ClusterConfig()));
  const BoxId victim = cluster.boxes_of_type(ResourceType::Cpu)[0];
  auto alloc = cluster.allocate(victim, 28);
  ASSERT_TRUE(alloc.ok());
  ASSERT_EQ(cluster.total_available(ResourceType::Cpu), 4608 - 28);

  cluster.set_box_offline(victim, true);
  EXPECT_EQ(cluster.box(victim).available_units(), 0);
  EXPECT_EQ(cluster.box(victim).raw_available_units(), 100);
  EXPECT_EQ(cluster.total_available(ResourceType::Cpu), 4608 - 128);
  EXPECT_EQ(cluster.rack(RackId{0}).max_available(ResourceType::Cpu), 128);
  cluster.check_invariants();

  // New allocations on the offline box fail; the resident allocation can
  // still be released but its units stay unavailable.
  EXPECT_FALSE(cluster.allocate(victim, 1).ok());
  cluster.release(alloc.value());
  EXPECT_EQ(cluster.total_available(ResourceType::Cpu), 4608 - 128);
  cluster.check_invariants();

  // Repair restores the full box.
  cluster.set_box_offline(victim, false);
  EXPECT_EQ(cluster.total_available(ResourceType::Cpu), 4608);
  cluster.check_invariants();
}

TEST(BoxFailure, IdempotentTransitions) {
  topo::Cluster cluster((topo::ClusterConfig()));
  const BoxId victim = cluster.boxes_of_type(ResourceType::Ram)[5];
  cluster.set_box_offline(victim, true);
  cluster.set_box_offline(victim, true);  // no double-subtract
  EXPECT_EQ(cluster.total_available(ResourceType::Ram), 4608 - 128);
  cluster.set_box_offline(victim, false);
  cluster.set_box_offline(victim, false);
  EXPECT_EQ(cluster.total_available(ResourceType::Ram), 4608);
  cluster.check_invariants();
}

TEST(BoxFailure, SchedulersRouteAroundOfflineBoxes) {
  auto stack = sim::make_table3_stack();
  // Take the only RAM box RISA would use in rack 1 (id 2) offline; rack 1
  // still has RAM box id 3 with 16 GB -- enough for a 16 GB VM.
  auto& cluster = stack->cluster();
  cluster.set_box_offline(cluster.boxes_of_type(ResourceType::Ram)[2], true);
  core::RisaAllocator risa(stack->context());
  auto placed = risa.try_place(sim::toy_vm(0, 8, 16.0, 128.0));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(cluster.box(placed->box(ResourceType::Ram)).index_in_type(), 3u);
  EXPECT_FALSE(placed->inter_rack);
}

TEST(BoxFailure, WholeTypeFailureDropsEverything) {
  topo::Cluster cluster((topo::ClusterConfig()));
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  for (BoxId id : cluster.boxes_of_type(ResourceType::Storage)) {
    cluster.set_box_offline(id, true);
  }
  auto risa = core::make_allocator("RISA", ctx);
  auto placed = risa->try_place(sim::toy_vm(0, 4, 8.0, 128.0));
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error(), core::DropReason::NoComputeResources);
}

TEST(BoxFailure, OfflineTeardownWithLiveCircuitsReleasesEveryReservation) {
  // Place a batch of VMs, take a box offline, tear down every resident
  // placement (the engine's kill path): afterwards no lane/link holds a
  // reservation for the victims, the circuit table has no trace of them,
  // and the incremental availability index still equals a naive rescan
  // (check_invariants recomputes every aggregate from scratch).
  topo::Cluster cluster((topo::ClusterConfig()));
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  auto nulb = core::make_allocator("NULB", ctx);

  std::vector<core::Placement> live;
  for (std::uint32_t i = 0; i < 24; ++i) {
    auto placed = nulb->try_place(sim::toy_vm(i, 16, 24.0, 128.0));
    ASSERT_TRUE(placed.ok());
    live.push_back(std::move(placed.value()));
  }
  ASSERT_EQ(circuits.active_count(), 2 * live.size());
  const MbitsPerSec intra_held = fabric.intra_allocated();
  ASSERT_GT(intra_held, 0);

  // NULB packs box 0 first: it must host residents.
  const BoxId victim = cluster.boxes_of_type(ResourceType::Cpu)[0];
  cluster.set_box_offline(victim, true);
  EXPECT_EQ(cluster.offline_box_count(), 1u);

  std::size_t killed = 0;
  for (std::size_t i = 0; i < live.size();) {
    bool resident = false;
    for (ResourceType t : kAllResources) {
      if (live[i].box(t) == victim) resident = true;
    }
    if (!resident) {
      ++i;
      continue;
    }
    const VmId vm = live[i].vm;
    ASSERT_EQ(circuits.circuit_count_of(vm), 2u);
    nulb->release(live[i]);
    EXPECT_EQ(circuits.circuit_count_of(vm), 0u);
    live[i] = std::move(live.back());
    live.pop_back();
    ++killed;
  }
  ASSERT_GT(killed, 0u);
  EXPECT_EQ(circuits.active_count(), 2 * live.size());
  // Index vs naive rescan (and every other aggregate) after the offline
  // churn: check_invariants throws on any divergence.
  cluster.check_invariants();
  fabric.check_invariants();

  // Release the survivors: every lane/link reservation must return.
  for (auto& p : live) nulb->release(p);
  EXPECT_EQ(circuits.active_count(), 0u);
  EXPECT_EQ(fabric.intra_allocated(), 0);
  EXPECT_EQ(fabric.inter_allocated(), 0);
  for (std::size_t l = 0; l < fabric.num_links(); ++l) {
    EXPECT_EQ(fabric.link(LinkId{static_cast<std::uint32_t>(l)}).allocated(), 0)
        << "link " << l;
  }
  cluster.set_box_offline(victim, false);
  EXPECT_EQ(cluster.offline_box_count(), 0u);
  cluster.check_invariants();
  fabric.check_invariants();
}

TEST(LinkFailure, FailedLinkLeavesRackAggregate) {
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  const LinkId victim = fabric.box_uplinks(BoxId{0})[0];
  const MbitsPerSec before = fabric.rack_intra_available(RackId{0});

  ASSERT_TRUE(fabric.allocate(victim, gbps(50.0)).ok());
  fabric.set_link_failed(victim, true);
  EXPECT_EQ(fabric.link(victim).available(), 0);
  EXPECT_EQ(fabric.link(victim).raw_available(), gbps(150.0));
  EXPECT_EQ(fabric.rack_intra_available(RackId{0}), before - gbps(200.0));
  EXPECT_FALSE(fabric.allocate(victim, 1).ok());
  fabric.check_invariants();

  // Release while failed: bandwidth returns to the link's books but stays
  // unavailable until repair.
  fabric.release(victim, gbps(50.0));
  EXPECT_EQ(fabric.rack_intra_available(RackId{0}), before - gbps(200.0));
  fabric.check_invariants();

  fabric.set_link_failed(victim, false);
  EXPECT_EQ(fabric.rack_intra_available(RackId{0}), before);
  EXPECT_EQ(fabric.link(victim).available(), gbps(200.0));
  fabric.check_invariants();
}

TEST(LinkFailure, RoutingAvoidsFailedLinks) {
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  const auto group = fabric.box_uplinks(BoxId{0});
  fabric.set_link_failed(group[0], true);
  auto pick = router.select_link(group, gbps(10.0),
                                 net::LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick.value(), group[1]);

  // Fail every uplink of the source box: no path can exist.
  for (LinkId id : group) fabric.set_link_failed(id, true);
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                               gbps(10.0), net::LinkSelectPolicy::FirstFit);
  EXPECT_FALSE(path.ok());
}

TEST(LinkFailure, AllocatorDropsOnIsolatedBoxThenRecovers) {
  topo::Cluster cluster((topo::ClusterConfig()));
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  auto nulb = core::make_allocator("NULB", ctx);

  // Isolate every CPU box's uplinks: network phase must fail everywhere.
  for (ResourceType t : {ResourceType::Cpu}) {
    for (BoxId id : cluster.boxes_of_type(t)) {
      for (LinkId l : fabric.box_uplinks(id)) fabric.set_link_failed(l, true);
    }
  }
  auto placed = nulb->try_place(sim::toy_vm(0, 8, 16.0, 128.0));
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error(), core::DropReason::NoNetworkResources);
  // Nothing leaked.
  EXPECT_EQ(cluster.total_available(ResourceType::Cpu), 4608);
  EXPECT_EQ(circuits.active_count(), 0u);

  // Repair one CPU box's uplinks: placement works again.
  for (LinkId l : fabric.box_uplinks(cluster.boxes_of_type(ResourceType::Cpu)[0])) {
    fabric.set_link_failed(l, false);
  }
  auto retry = nulb->try_place(sim::toy_vm(1, 8, 16.0, 128.0));
  EXPECT_TRUE(retry.ok());
}

}  // namespace
}  // namespace risa
