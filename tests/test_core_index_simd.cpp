// Differential suite for the vectorized availability index and the sharded
// pool walk (DESIGN.md §10).  Four properties are pinned:
//
//   1. The dispatched ge_mask64 kernel (AVX2/SSE2/NEON or scalar, whichever
//      the build selected) agrees bit for bit with the always-compiled
//      scalar reference on adversarial lane patterns -- so RISA_ENABLE_SIMD
//      ON and OFF builds are interchangeable.
//   2. Under randomized allocate/release/offline churn, every per-shard
//      membership word (pool_word / type_word) equals a naive per-rack
//      rescan, and equals the corresponding word of the full-mask query --
//      the word-granular contract the sharded scans rely on.
//   3. ShardedPoolWalk's lazily-computed visit sequence is exactly the
//      eager cyclic ascending walk over the materialized pool mask, from
//      any start -- the determinism argument in shard_walk.hpp, tested.
//   4. The RisaAllocator pool queries stay equivalent to the naive rescan
//      while placements run against a fabric with live link failures and
//      repairs (commit/rollback paths under degraded bandwidth).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/rack_set.hpp"
#include "common/simd.hpp"
#include "core/risa.hpp"
#include "core/shard_walk.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/cluster.hpp"
#include "topology/config.hpp"

namespace risa::core {
namespace {

using topo::RackAvailabilityIndex;

// ---- 1. kernel differential -------------------------------------------------

using Lanes = std::array<std::uint16_t, 64>;

void expect_kernel_matches(const Lanes& lanes, std::uint16_t threshold) {
  EXPECT_EQ(simd::ge_mask64(lanes.data(), threshold),
            simd::detail::ge_mask64_scalar(lanes.data(), threshold))
      << "threshold=" << threshold << " backend=" << simd::kBackend;
}

TEST(IndexSimdKernel, BoundaryPatterns) {
  const std::uint16_t thresholds[] = {0, 1, 2, 255, 256, 32767,
                                      32768, 65534, 65535};
  Lanes lanes{};

  // All-zero and all-max lanes.
  for (std::uint16_t thr : thresholds) expect_kernel_matches(lanes, thr);
  lanes.fill(65535);
  for (std::uint16_t thr : thresholds) expect_kernel_matches(lanes, thr);

  // Ascending ramp: lanes straddle every threshold from both sides.
  for (unsigned i = 0; i < 64; ++i) {
    lanes[i] = static_cast<std::uint16_t>(i * 1040);  // 0 .. 65520
  }
  for (std::uint16_t thr : thresholds) expect_kernel_matches(lanes, thr);

  // Exact-equality lanes: >= must report lanes *equal* to the threshold.
  for (std::uint16_t thr : thresholds) {
    lanes.fill(thr);
    expect_kernel_matches(lanes, thr);
    const std::uint64_t mask = simd::ge_mask64(lanes.data(), thr);
    EXPECT_EQ(mask, ~std::uint64_t{0}) << "lane == threshold must be set";
  }

  // The sign-flip edge for the saturating-subtract trick: values around
  // 0x8000 behave differently under signed compares; the kernel must not.
  for (unsigned i = 0; i < 64; ++i) {
    lanes[i] = static_cast<std::uint16_t>(0x7FFE + (i % 5));
  }
  for (std::uint16_t thr : {std::uint16_t{0x7FFF}, std::uint16_t{0x8000},
                            std::uint16_t{0x8001}}) {
    expect_kernel_matches(lanes, thr);
  }
}

TEST(IndexSimdKernel, RandomizedLanes) {
  Rng rng(0x51D0F5EEDULL);
  Lanes lanes{};
  for (int trial = 0; trial < 2000; ++trial) {
    const auto thr =
        static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    for (auto& lane : lanes) {
      // Mix uniform lanes with near-threshold lanes so every trial has
      // bits on both sides of (and exactly at) the boundary.
      const int mode = static_cast<int>(rng.uniform_int(0, 3));
      if (mode == 0) {
        lane = thr;
      } else if (mode == 1) {
        lane = static_cast<std::uint16_t>(thr + rng.uniform_int(-1, 1));
      } else {
        lane = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      }
    }
    expect_kernel_matches(lanes, thr);
  }
}

// ---- shared naive oracles ---------------------------------------------------

/// Naive per-shard INTRA_RACK_POOL word: rescan the rack aggregates.
std::uint64_t naive_pool_word(const topo::Cluster& cluster, std::uint32_t shard,
                              const UnitVector& units) {
  std::uint64_t word = 0;
  const std::uint32_t base = shard * RackAvailabilityIndex::kShardRacks;
  for (std::uint32_t bit = 0; bit < RackAvailabilityIndex::kShardRacks; ++bit) {
    const std::uint32_t r = base + bit;
    if (r >= cluster.num_racks()) break;
    bool fits = true;
    for (ResourceType t : kAllResources) {
      if (cluster.rack(RackId{r}).max_available(t) < units[t]) {
        fits = false;
        break;
      }
    }
    if (fits) word |= std::uint64_t{1} << bit;
  }
  return word;
}

/// Naive per-shard SUPER_RACK word for one type.
std::uint64_t naive_type_word(const topo::Cluster& cluster, std::uint32_t shard,
                              ResourceType type, Units units) {
  std::uint64_t word = 0;
  const std::uint32_t base = shard * RackAvailabilityIndex::kShardRacks;
  for (std::uint32_t bit = 0; bit < RackAvailabilityIndex::kShardRacks; ++bit) {
    const std::uint32_t r = base + bit;
    if (r >= cluster.num_racks()) break;
    if (cluster.rack(RackId{r}).max_available(type) >= units) {
      word |= std::uint64_t{1} << bit;
    }
  }
  return word;
}

/// Word-level check: every shard word against the naive rescan, and against
/// the corresponding word of the materialized full-mask answer.
void expect_words_match(const topo::Cluster& cluster, const UnitVector& units) {
  const RackAvailabilityIndex& index = cluster.rack_index();
  RackSet pool;
  cluster.eligible_racks(units, pool);
  for (std::uint32_t s = 0; s < index.num_shards(); ++s) {
    const std::uint64_t expected = naive_pool_word(cluster, s, units);
    EXPECT_EQ(index.pool_word(s, units), expected) << "shard " << s;
    EXPECT_EQ(pool.word(s), expected) << "pool_mask word " << s;
  }
  for (ResourceType t : kAllResources) {
    RackSet super;
    cluster.eligible_racks(t, units[t], super);
    for (std::uint32_t s = 0; s < index.num_shards(); ++s) {
      const std::uint64_t expected = naive_type_word(cluster, s, t, units[t]);
      EXPECT_EQ(index.type_word(s, t, units[t]), expected)
          << "type " << name(t) << " shard " << s;
      EXPECT_EQ(super.word(s), expected)
          << "type_mask " << name(t) << " word " << s;
    }
  }
}

/// The eager reference walk: materialize the pool mask, then visit it in
/// cyclic ascending order from `start` with RackSet::next.
std::vector<RackId> eager_walk(const topo::Cluster& cluster,
                               const UnitVector& units, std::uint32_t start) {
  RackSet mask;
  cluster.eligible_racks(units, mask);
  std::vector<RackId> out;
  for (RackId r = mask.next(start); r.valid(); r = mask.next(r.value() + 1)) {
    out.push_back(r);
  }
  for (RackId r = mask.next(0); r.valid() && r.value() < start;
       r = mask.next(r.value() + 1)) {
    out.push_back(r);
  }
  return out;
}

std::vector<RackId> sharded_walk(const topo::Cluster& cluster,
                                 const UnitVector& units, std::uint32_t start) {
  ShardedPoolWalk walk(cluster.rack_index(), units, start);
  std::vector<RackId> out;
  for (RackId r = walk.next(); r.valid(); r = walk.next()) out.push_back(r);
  return out;
}

// ---- 2 + 3. churn over words and walks --------------------------------------

/// Random allocate/release/offline churn cross-checking shard words and
/// walk order throughout (mirrors test_core_index_equivalence's churn but
/// at word/sequence granularity).
void run_word_churn(const topo::ClusterConfig& config, std::uint64_t seed,
                    int steps) {
  topo::Cluster cluster(config);
  Rng rng(seed);
  std::vector<topo::BoxAllocation> live;
  std::vector<BoxId> offline;

  const auto random_units = [&] {
    UnitVector u{0, 0, 0};
    for (ResourceType t : kAllResources) {
      u[t] = rng.uniform_int(0, config.box_units(t) + 1);  // may exceed any box
    }
    return u;
  };

  for (int step = 0; step < steps; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 5) {
      const BoxId box{static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
      const Units want =
          rng.uniform_int(1, config.box_units(cluster.box(box).type()));
      auto alloc = cluster.allocate(box, want);
      if (alloc.ok()) live.push_back(std::move(alloc.value()));
    } else if (op < 8) {
      if (!live.empty()) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        cluster.release(live[i]);
        live[i] = std::move(live.back());
        live.pop_back();
      }
    } else if (op == 8) {
      const BoxId box{static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
      if (!cluster.box(box).offline()) {
        cluster.set_box_offline(box, true);
        offline.push_back(box);
      }
    } else {
      if (!offline.empty()) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(offline.size()) - 1));
        cluster.set_box_offline(offline[i], false);
        offline[i] = offline.back();
        offline.pop_back();
      }
    }

    if (step % 16 == 0) {
      cluster.check_invariants();
      for (int q = 0; q < 4; ++q) {
        const UnitVector units = random_units();
        expect_words_match(cluster, units);
        // Walk order from boundary starts (shard edges) and a random start.
        const std::uint32_t starts[] = {
            0, 63 % cluster.num_racks(), 64 % cluster.num_racks(),
            cluster.num_racks() - 1,
            static_cast<std::uint32_t>(
                rng.uniform_int(0, cluster.num_racks() - 1))};
        for (std::uint32_t start : starts) {
          EXPECT_EQ(sharded_walk(cluster, units, start),
                    eager_walk(cluster, units, start))
              << "start=" << start;
        }
      }
      expect_words_match(cluster, UnitVector{0, 0, 0});
    }
  }
  cluster.check_invariants();
}

TEST(IndexSimdWords, PaperClusterChurn) {
  run_word_churn(topo::ClusterConfig{}, 0xA5EED001ULL, 1500);
}

TEST(IndexSimdWords, MultiShardChurn) {
  topo::ClusterConfig cfg;
  cfg.racks = 2 * RackAvailabilityIndex::kShardRacks + 17;  // 3 shards, ragged
  run_word_churn(cfg, 0xB5EED002ULL, 800);
}

// Lanes saturate at kLaneMax; demands above it must take the exact-value
// path and still agree with the naive rescan (and the walk order).
TEST(IndexSimdWords, SaturatedLanesChurn) {
  topo::ClusterConfig cfg;
  cfg.racks = RackAvailabilityIndex::kShardRacks + 3;  // 2 shards
  cfg.boxes_per_rack = PerResource<std::uint32_t>{1, 1, 1};
  cfg.bricks_per_box = 1;
  // CPU above the u16 ceiling, RAM exactly at it, storage just past it:
  // every query mixes saturated and representable lanes.
  cfg.box_units_override =
      UnitVector{RackAvailabilityIndex::kLaneMax + 40000,
                 RackAvailabilityIndex::kLaneMax,
                 RackAvailabilityIndex::kLaneMax + 1};
  run_word_churn(cfg, 0xC5EED003ULL, 600);
}

TEST(IndexSimdWords, WalkFromEveryStartOnPartialPool) {
  // Deterministic occupancy, then the walk order is checked from *every*
  // start position (the churn test samples starts; this is exhaustive).
  topo::ClusterConfig cfg;
  cfg.racks = RackAvailabilityIndex::kShardRacks + 21;
  topo::Cluster cluster(cfg);
  Rng rng(0xD5EED004ULL);
  std::vector<topo::BoxAllocation> live;
  for (int i = 0; i < 400; ++i) {
    const BoxId box{static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
    const Units want =
        rng.uniform_int(1, cfg.box_units(cluster.box(box).type()));
    auto alloc = cluster.allocate(box, want);
    if (alloc.ok()) live.push_back(std::move(alloc.value()));
  }
  const UnitVector demands[] = {{0, 0, 0},
                                {1, 1, 1},
                                {cfg.box_units(ResourceType::Cpu) / 2,
                                 cfg.box_units(ResourceType::Ram) / 2,
                                 cfg.box_units(ResourceType::Storage) / 2},
                                {cfg.box_units(ResourceType::Cpu),
                                 cfg.box_units(ResourceType::Ram),
                                 cfg.box_units(ResourceType::Storage)}};
  for (const UnitVector& units : demands) {
    for (std::uint32_t start = 0; start < cluster.num_racks(); ++start) {
      ASSERT_EQ(sharded_walk(cluster, units, start),
                eager_walk(cluster, units, start))
          << "start=" << start;
    }
  }
}

// ---- 4. allocator equivalence under link failures ---------------------------

TEST(IndexSimdWords, RisaAllocatorMatchesNaiveUnderLinkFailures) {
  topo::ClusterConfig config;
  topo::Cluster cluster(config);
  net::Fabric fabric(config, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  RisaAllocator risa(ctx);

  Rng rng(0xE5EED005ULL);
  std::vector<Placement> placements;
  std::vector<LinkId> failed;
  for (int i = 0; i < 400; ++i) {
    wl::VmRequest vm;
    vm.id = VmId{static_cast<std::uint32_t>(i)};
    vm.cores = rng.uniform_int(1, 32);
    vm.ram_mb = static_cast<Megabytes>(rng.uniform_int(1, 64)) * 1024;
    vm.storage_mb = static_cast<Megabytes>(128) * 1024;
    vm.lifetime = 100.0;
    auto placed = risa.try_place(vm);
    if (placed.ok()) placements.push_back(std::move(placed.value()));

    if (!placements.empty() && rng.uniform_int(0, 3) == 0) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(placements.size()) - 1));
      risa.release(placements[j]);
      placements[j] = std::move(placements.back());
      placements.pop_back();
    }

    // Fail or repair a random link.  Circuits reserved before a failure
    // remain releasable, so no placement bookkeeping is needed here --
    // only the index/pool answers are under test.
    if (rng.uniform_int(0, 4) == 0) {
      const LinkId link{static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(fabric.num_links()) - 1))};
      if (rng.uniform_int(0, 1) == 0 || failed.empty()) {
        fabric.set_link_failed(link, true);
        failed.push_back(link);
      } else {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(failed.size()) - 1));
        fabric.set_link_failed(failed[j], false);
        failed[j] = failed.back();
        failed.pop_back();
      }
    }

    const UnitVector demand{rng.uniform_int(0, 128), rng.uniform_int(0, 128),
                            rng.uniform_int(0, 128)};
    expect_words_match(cluster, demand);
    const std::uint32_t start = static_cast<std::uint32_t>(
        rng.uniform_int(0, cluster.num_racks() - 1));
    EXPECT_EQ(sharded_walk(cluster, demand, start),
              eager_walk(cluster, demand, start));
  }
  cluster.check_invariants();
}

}  // namespace
}  // namespace risa::core
