// U32Map: the flat open-addressing map behind CircuitTable.  Backward-
// shift deletion is the risky part, so the core test is a randomized
// churn differential against std::unordered_map.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/u32_map.hpp"

namespace risa {
namespace {

TEST(U32Map, InsertFindErase) {
  U32Map<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);

  map.find_or_insert(3) = 30;
  map.find_or_insert(5) = 50;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(3), nullptr);
  EXPECT_EQ(*map.find(3), 30);
  EXPECT_EQ(*map.find(5), 50);

  // find_or_insert on a present key returns the existing value.
  map.find_or_insert(3) += 1;
  EXPECT_EQ(*map.find(3), 31);

  EXPECT_TRUE(map.erase(3));
  EXPECT_FALSE(map.erase(3));
  EXPECT_EQ(map.find(3), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(U32Map, ReservedSentinelKeyThrows) {
  U32Map<int> map;
  EXPECT_THROW(map.find_or_insert(0xFFFFFFFFu), std::invalid_argument);
  EXPECT_EQ(map.find(0xFFFFFFFFu), nullptr);
  EXPECT_FALSE(map.erase(0xFFFFFFFFu));
  // The largest legal key works.
  map.find_or_insert(0xFFFFFFFEu) = 1;
  EXPECT_EQ(*map.find(0xFFFFFFFEu), 1);
}

TEST(U32Map, ClearRetainsCapacityAndResetsValues) {
  U32Map<std::vector<int>> map;
  for (std::uint32_t i = 0; i < 100; ++i) {
    map.find_or_insert(i).assign(4, static_cast<int>(i));
  }
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.find(7), nullptr);
  // Reclaimed slots must hand back freshly constructed values.
  EXPECT_TRUE(map.find_or_insert(7).empty());
}

TEST(U32Map, ReservePreventsRehash) {
  U32Map<int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  for (std::uint32_t i = 0; i < 1000; ++i) map.find_or_insert(i) = 1;
  EXPECT_EQ(map.capacity(), cap);
}

TEST(U32Map, ForEachVisitsEveryEntryOnce) {
  U32Map<std::uint64_t> map;
  std::uint64_t want_sum = 0;
  for (std::uint32_t i = 1; i <= 500; ++i) {
    map.find_or_insert(i * 17) = i;
    want_sum += i;
  }
  std::uint64_t sum = 0;
  std::size_t visits = 0;
  map.for_each([&](std::uint32_t key, const std::uint64_t& v) {
    EXPECT_EQ(key, v * 17);
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 500u);
  EXPECT_EQ(sum, want_sum);
}

TEST(U32Map, RandomChurnMatchesUnorderedMap) {
  // Sequential-ish keys with heavy insert/erase churn -- the engine's
  // access pattern -- checked operation by operation against the STL map.
  Rng rng(1234);
  U32Map<std::string> map;
  std::unordered_map<std::uint32_t, std::string> ref;

  for (int op = 0; op < 50000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.uniform_int(0, 799));
    const auto action = rng.uniform_int(0, 9);
    if (action < 5) {
      const std::string value = "v" + std::to_string(op);
      map.find_or_insert(key) = value;
      ref[key] = value;
    } else if (action < 8) {
      EXPECT_EQ(map.erase(key), ref.erase(key) > 0) << "key " << key;
    } else {
      const std::string* found = map.find(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr) << "key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "key " << key;
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }

  // Full sweep at the end: every surviving key agrees.
  for (const auto& [key, value] : ref) {
    const std::string* found = map.find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
  }
  std::size_t visits = 0;
  map.for_each([&](std::uint32_t key, const std::string&) {
    EXPECT_EQ(ref.count(key), 1u);
    ++visits;
  });
  EXPECT_EQ(visits, ref.size());
}

TEST(U32Map, DrainToEmptyAndRefill) {
  U32Map<int> map;
  for (std::uint32_t i = 0; i < 300; ++i) map.find_or_insert(i) = 1;
  for (std::uint32_t i = 0; i < 300; ++i) EXPECT_TRUE(map.erase(i));
  EXPECT_TRUE(map.empty());
  for (std::uint32_t i = 1000; i < 1300; ++i) map.find_or_insert(i) = 2;
  EXPECT_EQ(map.size(), 300u);
  for (std::uint32_t i = 1000; i < 1300; ++i) {
    ASSERT_NE(map.find(i), nullptr);
    EXPECT_EQ(*map.find(i), 2);
  }
}

}  // namespace
}  // namespace risa
