// ThreadPool: completeness, lane stability, exception transparency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace risa {
namespace {

TEST(ThreadPool, RunIndexedVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.run_indexed(kN, [&](std::size_t, std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, LanesStayWithinPoolSize) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> lane_hits(4);
  pool.run_indexed(200, [&](std::size_t lane, std::size_t) {
    ASSERT_LT(lane, 4u);
    ++lane_hits[lane];
  });
  int total = 0;
  for (auto& h : lane_hits) total += h.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, ZeroItemsIsHarmless) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_indexed(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, FirstJobExceptionIsRethrownOnCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_indexed(50,
                       [&](std::size_t, std::size_t i) {
                         if (i == 17) throw std::runtime_error("cell 17");
                       }),
      std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> count{0};
  pool.run_indexed(10, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MoreThreadsThanItemsCompletes) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.run_indexed(3, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SubmitAndWaitDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace risa
