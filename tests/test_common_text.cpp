// Text-layer substrates: histograms (Figure 6 binning semantics), CSV, CLI
// flags, string utilities and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/histogram.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace risa {
namespace {

// --- Histogram (matplotlib semantics drive the Figure 6 decode) -----------

TEST(Histogram, MatplotlibBinningLastBinClosed) {
  // 10 bins over [1, 8]: width 0.7.  cores=8 must land in the last bin and
  // cores=4 in bin 4 -- this is exactly how Figure 6's CPU panel bins.
  Histogram h(1.0, 8.0, 10);
  EXPECT_EQ(h.bin_of(1.0), 0u);
  EXPECT_EQ(h.bin_of(2.0), 1u);
  EXPECT_EQ(h.bin_of(4.0), 4u);
  EXPECT_EQ(h.bin_of(8.0), 9u);  // hi is closed
  EXPECT_THROW((void)h.bin_of(0.5), std::out_of_range);
  EXPECT_THROW((void)h.bin_of(8.5), std::out_of_range);
}

TEST(Histogram, RamBinDecodeMatchesFigure6Layout) {
  // 10 bins over [0.75, 56]: the 2017 Azure RAM sizes fall into bins
  // {0:0.75,1.75,3.5}, {1:7}, {2:14}, {4:28}, {9:56}.
  Histogram h(0.75, 56.0, 10);
  EXPECT_EQ(h.bin_of(0.75), 0u);
  EXPECT_EQ(h.bin_of(1.75), 0u);
  EXPECT_EQ(h.bin_of(3.5), 0u);
  EXPECT_EQ(h.bin_of(7.0), 1u);
  EXPECT_EQ(h.bin_of(14.0), 2u);
  EXPECT_EQ(h.bin_of(28.0), 4u);
  EXPECT_EQ(h.bin_of(56.0), 9u);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.count(0), 2);  // 0.5, 1.5
  EXPECT_EQ(h.count(1), 2);  // 2.5, 2.6
  EXPECT_EQ(h.count(4), 2);  // 9.9, 10.0
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, FromDataUsesMinMax) {
  const Histogram h = Histogram::from_data({1.0, 2.0, 4.0, 8.0}, 10);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 8.0);
  EXPECT_EQ(h.total(), 4);
  EXPECT_THROW(Histogram::from_data({}, 10), std::invalid_argument);
}

TEST(Histogram, DegenerateConfigsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- CSV -------------------------------------------------------------------

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"id", "name", "note"});
  w.write_row({"1", "a,b", "say \"hi\""});
  std::istringstream is(os.str());
  const auto rows = CsvReader::read_all(is);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "a,b");
  EXPECT_EQ(rows[1][2], "say \"hi\"");
}

TEST(Csv, UnbalancedQuotesThrow) {
  EXPECT_THROW(CsvReader::parse_line("\"oops"), std::runtime_error);
}

TEST(Csv, ToleratesCrlf) {
  const auto cells = CsvReader::parse_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

// --- Flags -------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  Flags f;
  f.define("count", "5", "a count");
  f.define("label", "x", "a label");
  f.define("verbose", "false", "a bool");
  const char* argv[] = {"prog", "--count=9", "--label", "hello", "--verbose",
                        "positional"};
  const auto positional = f.parse(6, argv);
  EXPECT_EQ(f.i64("count"), 9);
  EXPECT_EQ(f.str("label"), "hello");
  EXPECT_TRUE(f.b("verbose"));
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
}

TEST(Flags, UnknownFlagThrows) {
  Flags f;
  f.define("a", "1", "");
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(f.parse(2, argv), std::runtime_error);
}

TEST(Flags, DuplicateDefineThrows) {
  Flags f;
  f.define("a", "1", "");
  EXPECT_THROW(f.define("a", "2", ""), std::logic_error);
}

TEST(Flags, UsageMentionsDefaults) {
  Flags f;
  f.define("seed", "42", "RNG seed");
  const std::string usage = f.usage("prog");
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
}

// --- string_util -------------------------------------------------------------

TEST(StringUtil, SplitAndTrim) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(trim(parts[1]), "b");
  EXPECT_EQ(trim("  x\t\n"), "x");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtil, Parsers) {
  EXPECT_EQ(parse_i64(" 42 "), 42);
  EXPECT_DOUBLE_EQ(parse_f64("2.5"), 2.5);
  EXPECT_TRUE(parse_bool("Yes"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_THROW((void)parse_i64("4x"), std::runtime_error);
  EXPECT_THROW((void)parse_f64(""), std::runtime_error);
  EXPECT_THROW((void)parse_bool("maybe"), std::runtime_error);
}

TEST(StringUtil, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
}

// --- TextTable ----------------------------------------------------------------

TEST(TextTable, RendersAlignedGrid) {
  TextTable t({"Algorithm", "Value"});
  t.add_row({"RISA", "7"});
  t.add_row({"NULB", "255"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| RISA"), std::string::npos);
  EXPECT_NE(s.find("255 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.525, 1), "52.5%");
}

}  // namespace
}  // namespace risa
