// Experiment definitions and report rendering: paper reference lookups and
// table shapes.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/synthetic.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

namespace risa::sim {
namespace {

TEST(Experiments, PaperReferencesMatchPublishedNumbers) {
  EXPECT_DOUBLE_EQ(*paper_reference("fig5", "Synthetic", "NULB"), 255);
  EXPECT_DOUBLE_EQ(*paper_reference("fig5", "Synthetic", "RISA"), 7);
  EXPECT_DOUBLE_EQ(*paper_reference("fig5", "Synthetic", "RISA-BF"), 2);
  EXPECT_DOUBLE_EQ(*paper_reference("fig9", "Azure-3000", "NULB"), 5.22);
  EXPECT_DOUBLE_EQ(*paper_reference("fig9", "Azure-7500", "NALB"), 6.72);
  EXPECT_DOUBLE_EQ(*paper_reference("fig10", "Azure-3000", "NALB"), 216);
  EXPECT_DOUBLE_EQ(*paper_reference("fig10", "Azure-5000", "RISA"), 110);
  EXPECT_DOUBLE_EQ(*paper_reference("fig11", "Synthetic", "NALB"), 865);
  EXPECT_DOUBLE_EQ(*paper_reference("fig12", "Azure-7500", "RISA"), 3679);
  EXPECT_DOUBLE_EQ(*paper_reference("fig8-intra", "Azure-5000", "RISA-BF"),
                   35.4);
  // Wildcard rows: RISA family is zero inter-rack on every Azure subset.
  EXPECT_DOUBLE_EQ(*paper_reference("fig7", "Azure-7500", "RISA"), 0.0);
  // Unreported combinations stay empty.
  EXPECT_FALSE(paper_reference("fig9", "Azure-5000", "NULB").has_value());
  EXPECT_FALSE(paper_reference("nope", "Synthetic", "NULB").has_value());
  EXPECT_EQ(paper_cell("fig9", "Azure-5000", "NULB"), "-");
  EXPECT_EQ(paper_cell("fig5", "Synthetic", "NULB", 0), "255");
}

TEST(Experiments, WorkloadBuildersProducePaperSizes) {
  EXPECT_EQ(synthetic_workload().size(), 2500u);
  const auto azure = azure_workloads();
  ASSERT_EQ(azure.size(), 3u);
  EXPECT_EQ(azure[0].first, "Azure-3000");
  EXPECT_EQ(azure[0].second.size(), 3000u);
  EXPECT_EQ(azure[1].second.size(), 5000u);
  EXPECT_EQ(azure[2].second.size(), 7500u);
}

TEST(Report, TablesRenderOneRowPerRun) {
  wl::SyntheticConfig cfg;
  cfg.count = 60;
  const auto runs = run_all_algorithms(
      Scenario::paper_defaults(), wl::generate_synthetic(cfg, 1), "Synthetic");

  EXPECT_EQ(figure5_table(runs).rows(), 4u);
  EXPECT_EQ(figure7_table(runs).rows(), 4u);
  EXPECT_EQ(figure8_table(runs).rows(), 4u);
  EXPECT_EQ(figure9_table(runs).rows(), 4u);
  EXPECT_EQ(figure10_table(runs).rows(), 4u);
  EXPECT_EQ(exec_time_table(runs, "fig11").rows(), 4u);
  EXPECT_EQ(utilization_table(runs).rows(), 4u);
  EXPECT_EQ(full_metrics_table(runs).rows(), 4u);

  // The Figure 5 table carries the paper's reference column.
  const std::string rendered = figure5_table(runs).to_string();
  EXPECT_NE(rendered.find("255"), std::string::npos);
  EXPECT_NE(rendered.find("RISA-BF"), std::string::npos);
}

TEST(Report, ExecTimeTableNormalizesToRisa) {
  wl::SyntheticConfig cfg;
  cfg.count = 60;
  const auto runs = run_all_algorithms(
      Scenario::paper_defaults(), wl::generate_synthetic(cfg, 2), "Synthetic");
  const std::string rendered = exec_time_table(runs, "fig11").to_string();
  EXPECT_NE(rendered.find("1.00x"), std::string::npos);
}

TEST(Experiments, ToyStackMatchesTable3State) {
  auto stack = make_table3_stack();
  const auto& cluster = stack->cluster();
  const auto avail = [&](ResourceType t, std::uint32_t idx) {
    return cluster.box(cluster.boxes_of_type(t)[idx]).available_units();
  };
  EXPECT_EQ(avail(ResourceType::Cpu, 0), 0);
  EXPECT_EQ(avail(ResourceType::Cpu, 2), 64);
  EXPECT_EQ(avail(ResourceType::Cpu, 3), 32);
  EXPECT_EQ(avail(ResourceType::Ram, 1), 16);
  EXPECT_EQ(avail(ResourceType::Ram, 2), 32);
  EXPECT_EQ(avail(ResourceType::Storage, 2), 4);
  EXPECT_EQ(avail(ResourceType::Storage, 3), 8);
  cluster.check_invariants();
}

TEST(Experiments, ToyVmHelper) {
  const wl::VmRequest vm = toy_vm(7, 8, 16.0, 128.0, 42.0);
  EXPECT_EQ(vm.id.value(), 7u);
  EXPECT_EQ(vm.cores, 8);
  EXPECT_EQ(vm.ram_mb, gb(16.0));
  EXPECT_EQ(vm.storage_mb, gb(128.0));
  EXPECT_DOUBLE_EQ(vm.lifetime, 42.0);
  EXPECT_DOUBLE_EQ(vm.departure(), 42.0);
}

TEST(Experiments, ToyStackRejectsRaisingAvailability) {
  auto stack = make_table3_stack();
  EXPECT_THROW(stack->set_availability(ResourceType::Cpu, 0, 64),
               std::invalid_argument);
}

}  // namespace
}  // namespace risa::sim
