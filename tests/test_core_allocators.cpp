// Allocator behaviours beyond the toy walk-throughs: commit/rollback
// atomicity, RISA pool maintenance, round-robin selection, fallback
// accounting, registry.
#include <gtest/gtest.h>

#include "core/nalb.hpp"
#include "core/nulb.hpp"
#include "core/registry.hpp"
#include "core/risa.hpp"
#include "sim/experiments.hpp"
#include "sim/scenario.hpp"

namespace risa::core {
namespace {

using sim::toy_vm;

/// A full paper-scale stack for allocator tests.
struct PaperStack {
  PaperStack()
      : cluster(topo::ClusterConfig{}),
        fabric(topo::ClusterConfig{}, net::FabricConfig{}),
        router(fabric),
        circuits(router) {}

  AllocContext context() {
    AllocContext ctx;
    ctx.cluster = &cluster;
    ctx.fabric = &fabric;
    ctx.router = &router;
    ctx.circuits = &circuits;
    return ctx;
  }

  topo::Cluster cluster;
  net::Fabric fabric;
  net::Router router;
  net::CircuitTable circuits;
};

wl::VmRequest typical_vm(std::uint32_t id = 0) {
  return toy_vm(id, 8, 16.0, 128.0, 500.0);
}

TEST(Allocator, PlacementReservesComputeAndCircuits) {
  PaperStack stack;
  NulbAllocator nulb(stack.context());
  auto placed = nulb.try_place(typical_vm());
  ASSERT_TRUE(placed.ok());
  const Placement& p = placed.value();
  // 8 cores = 2 units, 16 GB = 4 units, 128 GB = 2 units (Table 1 scale).
  EXPECT_EQ(p.units, (UnitVector{2, 4, 2}));
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Cpu), 4608 - 2);
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Ram), 4608 - 4);
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Storage), 4608 - 2);
  // Two circuits: CPU-RAM at 10 Gb/s and RAM-STO at 4 Gb/s, 2 hops each.
  EXPECT_EQ(stack.circuits.active_count(), 2u);
  EXPECT_EQ(stack.fabric.intra_allocated(), 2 * gbps(10.0) + 2 * gbps(4.0));

  nulb.release(p);
  EXPECT_EQ(stack.circuits.active_count(), 0u);
  EXPECT_EQ(stack.fabric.intra_allocated(), 0);
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Cpu), 4608);
  stack.cluster.check_invariants();
  stack.fabric.check_invariants();
}

TEST(Allocator, ComputeDropLeavesNoResidue) {
  PaperStack stack;
  // Exhaust all storage: any VM must drop with NoComputeResources.
  for (BoxId id : stack.cluster.boxes_of_type(ResourceType::Storage)) {
    ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
  }
  NulbAllocator nulb(stack.context());
  auto placed = nulb.try_place(typical_vm());
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error(), DropReason::NoComputeResources);
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Cpu), 4608);
  EXPECT_EQ(stack.fabric.intra_allocated(), 0);
  EXPECT_EQ(stack.circuits.active_count(), 0u);
}

TEST(Allocator, NetworkDropRollsBackCompute) {
  PaperStack stack;
  // Saturate every box uplink so the network phase must fail everywhere.
  for (std::uint32_t b = 0; b < stack.cluster.num_boxes(); ++b) {
    for (LinkId id : stack.fabric.box_uplinks(BoxId{b})) {
      ASSERT_TRUE(
          stack.fabric.allocate(id, stack.fabric.link(id).available()).ok());
    }
  }
  NulbAllocator nulb(stack.context());
  auto placed = nulb.try_place(typical_vm());
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error(), DropReason::NoNetworkResources);
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(stack.cluster.total_available(t), 4608) << name(t);
  }
  EXPECT_EQ(stack.circuits.active_count(), 0u);
  stack.cluster.check_invariants();
}

TEST(Risa, RoundRobinSpreadsAcrossRacks) {
  PaperStack stack;
  RisaAllocator risa(stack.context());
  std::vector<std::uint32_t> racks;
  for (std::uint32_t i = 0; i < 6; ++i) {
    auto placed = risa.try_place(typical_vm(i));
    ASSERT_TRUE(placed.ok());
    EXPECT_FALSE(placed->inter_rack);
    racks.push_back(placed->rack(ResourceType::Cpu).value());
  }
  // Round-robin over an all-eligible pool: racks 0, 1, 2, 3, 4, 5.
  EXPECT_EQ(racks, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Risa, FirstEligibleSelectionKeepsHammeringRackZero) {
  PaperStack stack;
  RisaOptions options;
  options.selection = RackSelection::FirstEligible;
  RisaAllocator risa(stack.context(), options);
  for (std::uint32_t i = 0; i < 6; ++i) {
    auto placed = risa.try_place(typical_vm(i));
    ASSERT_TRUE(placed.ok());
    EXPECT_EQ(placed->rack(ResourceType::Cpu), RackId{0});
  }
}

TEST(Risa, PoolShrinksAsRacksFill) {
  PaperStack stack;
  RisaAllocator risa(stack.context());
  const UnitVector demand{8, 8, 8};
  EXPECT_EQ(risa.intra_rack_pool(demand).size(), 18u);
  // Burn rack 0's CPU boxes below the demand.
  for (BoxId id :
       stack.cluster.boxes_of_type_in_rack(RackId{0}, ResourceType::Cpu)) {
    ASSERT_TRUE(stack.cluster.allocate(id, 122).ok());  // 6 left
  }
  const auto pool = risa.intra_rack_pool(demand);
  EXPECT_EQ(pool.size(), 17u);
  for (RackId r : pool) EXPECT_NE(r, RackId{0});
}

TEST(Risa, SuperRackListsPerType) {
  PaperStack stack;
  RisaAllocator risa(stack.context());
  for (BoxId id :
       stack.cluster.boxes_of_type_in_rack(RackId{3}, ResourceType::Ram)) {
    ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
  }
  const auto lists = risa.super_rack(UnitVector{1, 1, 1});
  EXPECT_EQ(lists[ResourceType::Cpu].size(), 18u);
  EXPECT_EQ(lists[ResourceType::Ram].size(), 17u);
  EXPECT_EQ(lists[ResourceType::Storage].size(), 18u);
}

TEST(Risa, FallbackPlacesInterRackAndCounts) {
  PaperStack stack;
  // Leave CPU only in rack 0 and RAM only in rack 17: no single rack can
  // host a whole VM, so RISA must fall back to SUPER_RACK/NULB.
  for (std::uint32_t r = 0; r < 18; ++r) {
    if (r != 0) {
      for (BoxId id :
           stack.cluster.boxes_of_type_in_rack(RackId{r}, ResourceType::Cpu)) {
        ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
      }
    }
    if (r != 17) {
      for (BoxId id :
           stack.cluster.boxes_of_type_in_rack(RackId{r}, ResourceType::Ram)) {
        ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
      }
    }
  }
  RisaAllocator risa(stack.context());
  auto placed = risa.try_place(typical_vm());
  ASSERT_TRUE(placed.ok());
  EXPECT_TRUE(placed->used_fallback);
  EXPECT_TRUE(placed->inter_rack);
  EXPECT_EQ(placed->rack(ResourceType::Cpu), RackId{0});
  EXPECT_EQ(placed->rack(ResourceType::Ram), RackId{17});
  EXPECT_EQ(risa.fallback_count(), 1u);
}

TEST(Risa, DropsWhenNoRackCanHostAnyResource) {
  PaperStack stack;
  for (BoxId id : stack.cluster.boxes_of_type(ResourceType::Ram)) {
    ASSERT_TRUE(stack.cluster.allocate(id, 128).ok());
  }
  RisaAllocator risa(stack.context());
  auto placed = risa.try_place(typical_vm());
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error(), DropReason::NoComputeResources);
}

TEST(Registry, BuildsAllFourAlgorithms) {
  PaperStack stack;
  const auto names = algorithm_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "NULB");
  EXPECT_EQ(names[3], "RISA-BF");
  for (const std::string& algo : names) {
    auto allocator = make_allocator(algo, stack.context());
    EXPECT_EQ(allocator->name(), algo);
  }
  // Case-insensitive aliases.
  EXPECT_EQ(make_allocator("risa_bf", stack.context())->name(), "RISA-BF");
  EXPECT_EQ(make_allocator("nulb", stack.context())->name(), "NULB");
  EXPECT_THROW((void)make_allocator("unknown", stack.context()),
               std::invalid_argument);
}

TEST(Registry, ContextValidationRejectsNulls) {
  AllocContext ctx;  // all nullptr
  EXPECT_THROW((void)make_allocator("RISA", ctx), std::invalid_argument);
}

}  // namespace
}  // namespace risa::core
