// Old-engine / new-engine equivalence: the typed merged event loop
// (arrival cursor + departures-only POD heap, dense live tables) must be
// bit-identical to the historical closure-based loop on des::Simulator.
//
// The reference below is the pre-refactor engine kept as an executable
// spec: every arrival is a closure in one big calendar (seq 0..N-1 in
// workload order), departures are closures scheduled at placement time
// (seq >= N), and live state sits in hash maps.  Equality is judged by
// metrics_fingerprint (bit-exact doubles, wall-clock fields excluded)
// over the full figure matrix plus adversarial tie/unsorted workloads.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/registry.hpp"
#include "des/simulator.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

/// The closure-based event loop, verbatim from the pre-typed-calendar
/// engine (minus timeline/latency recording, which the fingerprint does
/// not cover).
SimMetrics reference_run(const Scenario& scenario, const std::string& algorithm,
                         const wl::Workload& workload,
                         const std::string& label) {
  topo::Cluster cluster(scenario.cluster);
  net::Fabric fabric(scenario.cluster, scenario.fabric);
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  ctx.bandwidth = scenario.bandwidth;
  auto allocator = core::make_allocator(algorithm, ctx, scenario.allocator);

  SimMetrics m;
  m.algorithm = std::string(allocator->name());
  m.workload = label;
  m.total_vms = workload.size();

  phot::PowerLedger ledger(scenario.photonics, fabric);

  PerResource<TimeWeightedMean> util;
  TimeWeightedMean intra_util, inter_util;
  auto sample_signals = [&](SimTime t) {
    for (ResourceType ty : kAllResources) {
      util[ty].update(t, cluster.utilization(ty));
    }
    intra_util.update(t, fabric.intra_utilization());
    inter_util.update(t, fabric.inter_utilization());
  };

  std::unordered_map<std::uint32_t, core::Placement> live;
  live.reserve(workload.size());

  des::Simulator sim;
  sample_signals(0.0);

  for (std::size_t vm_index = 0; vm_index < workload.size(); ++vm_index) {
    sim.schedule_at(workload[vm_index].arrival, [&, vm_index](des::Simulator& s) {
      const wl::VmRequest& vm = workload[vm_index];
      auto placed = allocator->try_place(vm);
      if (!placed.ok()) {
        ++m.dropped;
        m.drops_by_reason.increment(core::name(placed.error()));
        return;
      }
      core::Placement& p =
          live.emplace(vm.id.value(), std::move(placed.value())).first->second;
      ++m.placed;
      if (p.inter_rack) ++m.any_pair_inter_rack;
      if (p.used_fallback) ++m.fallback_placements;

      const bool cpu_ram_inter =
          p.rack(ResourceType::Cpu) != p.rack(ResourceType::Ram);
      if (cpu_ram_inter) ++m.inter_rack_placements;
      const bool cross_pod =
          cpu_ram_inter && !fabric.same_pod(p.rack(ResourceType::Cpu),
                                            p.rack(ResourceType::Ram));
      m.cpu_ram_latency_ns.add(
          scenario.latency.rtt_ns(cpu_ram_inter, cross_pod));

      ledger.charge_vm(circuits, vm.id, vm.lifetime);

      sample_signals(s.now());
      s.schedule_at(vm.departure(), [&, id = vm.id](des::Simulator& s2) {
        const auto it = live.find(id.value());
        ASSERT_TRUE(it != live.end());
        allocator->release(it->second);
        live.erase(it);
        sample_signals(s2.now());
      });
    });
  }

  m.horizon_tu = sim.run();
  if (m.horizon_tu <= 0.0) m.horizon_tu = 1.0;
  m.events_executed = sim.executed();

  for (ResourceType ty : kAllResources) {
    m.avg_utilization[ty] = util[ty].mean(m.horizon_tu);
    m.peak_utilization[ty] = util[ty].peak();
  }
  m.avg_intra_net_utilization = intra_util.mean(m.horizon_tu);
  m.avg_inter_net_utilization = inter_util.mean(m.horizon_tu);
  m.peak_intra_net_utilization = intra_util.peak();
  m.peak_inter_net_utilization = inter_util.peak();
  m.energy = ledger.totals();
  m.avg_optical_power_w = ledger.average_power_w(m.horizon_tu);
  EXPECT_TRUE(live.empty());
  return m;
}

void expect_equivalent(const wl::Workload& workload, const std::string& label) {
  const Scenario scenario = Scenario::paper_defaults();
  for (const std::string& algo : core::algorithm_names()) {
    Engine engine(scenario, algo);
    const SimMetrics typed = engine.run(workload, label);
    const SimMetrics ref = reference_run(scenario, algo, workload, label);
    EXPECT_EQ(metrics_fingerprint(typed), metrics_fingerprint(ref))
        << label << " / " << algo;
    EXPECT_EQ(typed.events_executed, ref.events_executed)
        << label << " / " << algo;

    // Lifecycle contract (DESIGN.md §8): an explicitly-installed empty
    // FaultPlan must leave the merged stream bit-identical to the
    // pre-lifecycle loop -- the whole figure matrix passes through here.
    const FaultPlan empty;
    engine.set_fault_plan(&empty);
    const SimMetrics gated = engine.run(workload, label);
    EXPECT_EQ(metrics_fingerprint(gated), metrics_fingerprint(ref))
        << label << " / " << algo << " (explicit empty FaultPlan)";
    EXPECT_EQ(gated.events_executed, ref.events_executed);

    // Migration contract (DESIGN.md §9): an explicitly-installed empty
    // MigrationPlan -- alone and on top of the empty FaultPlan -- must
    // also be bit-identical over the full figure matrix.
    const MigrationPlan no_mig;
    engine.set_migration_plan(&no_mig);
    const SimMetrics mig_gated = engine.run(workload, label);
    EXPECT_EQ(metrics_fingerprint(mig_gated), metrics_fingerprint(ref))
        << label << " / " << algo << " (explicit empty MigrationPlan)";
    EXPECT_EQ(mig_gated.events_executed, ref.events_executed);
    EXPECT_EQ(mig_gated.migrated, 0u);
    engine.set_fault_plan(nullptr);
    engine.set_migration_plan(nullptr);
  }
}

TEST(EngineEquivalence, FullFigureMatrix) {
  expect_equivalent(synthetic_workload(), "Synthetic");
  for (const auto& [label, workload] : azure_workloads()) {
    expect_equivalent(workload, label);
  }
}

TEST(EngineEquivalence, EqualTimestampTies) {
  // Bursts of identical arrival times, zero lifetimes (departure ==
  // arrival) and lifetimes engineered so departures collide with later
  // arrivals: every merge tie-break rule gets exercised.
  wl::SyntheticConfig cfg;
  cfg.count = 240;
  wl::Workload workload = wl::generate_synthetic(cfg, 99);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    workload[i].arrival = static_cast<double>((i / 8) * 10);  // bursts of 8
    switch (i % 3) {
      case 0: workload[i].lifetime = 0.0; break;              // dep == arr tie
      case 1: workload[i].lifetime = 10.0; break;             // dep == next burst
      default: workload[i].lifetime = 35.0; break;            // dep between bursts
    }
  }
  expect_equivalent(workload, "ties");
}

TEST(EngineEquivalence, UnsortedWorkloadInput) {
  // The closure calendar never required sorted arrivals; the arrival
  // cursor must sort by (arrival, index) and still match bit-for-bit.
  wl::SyntheticConfig cfg;
  cfg.count = 300;
  wl::Workload workload = wl::generate_synthetic(cfg, 7);
  Rng rng(13);
  for (std::size_t i = workload.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(workload[i - 1], workload[j]);
  }
  expect_equivalent(workload, "unsorted");
}

}  // namespace
}  // namespace risa::sim
