// Streaming arrival pipeline (DESIGN.md §11): every ArrivalSource backend
// must reproduce the materialized generators exactly (bit-equal doubles,
// original workload indices), the engine's pull-based loop must be
// fingerprint-identical to the materialized path over the figure matrix
// and adversarial tie/unsorted workloads, and a run resumed from any
// mid-run checkpoint must match the uninterrupted run bit-for-bit.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "topology/box.hpp"
#include "workload/arrival_source.hpp"
#include "workload/azure.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

namespace risa::sim {
namespace {

/// Pull the whole stream through `batch`-sized refills.
std::vector<wl::ArrivalItem> drain(wl::ArrivalSource& source,
                                   std::size_t batch) {
  std::vector<wl::ArrivalItem> out;
  std::vector<wl::ArrivalItem> buf(batch);
  std::size_t n = 0;
  while ((n = source.next_batch(std::span<wl::ArrivalItem>(buf.data(),
                                                           batch))) > 0) {
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

/// The engine's historical arrival cursor: (arrival, original index) order.
std::vector<wl::ArrivalItem> arrival_order(const wl::Workload& w) {
  std::vector<wl::ArrivalItem> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {w[i], static_cast<std::uint32_t>(i)};
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const wl::ArrivalItem& a, const wl::ArrivalItem& b) {
                     if (a.vm.arrival != b.vm.arrival) {
                       return a.vm.arrival < b.vm.arrival;
                     }
                     return a.index < b.index;
                   });
  return items;
}

void expect_items_equal(const std::vector<wl::ArrivalItem>& got,
                        const std::vector<wl::ArrivalItem>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << what << " item " << i;
    EXPECT_EQ(got[i].vm.id.value(), want[i].vm.id.value()) << what << " " << i;
    EXPECT_EQ(got[i].vm.cores, want[i].vm.cores) << what << " " << i;
    EXPECT_EQ(got[i].vm.ram_mb, want[i].vm.ram_mb) << what << " " << i;
    EXPECT_EQ(got[i].vm.storage_mb, want[i].vm.storage_mb) << what << " " << i;
    // Bit-exact doubles: the streaming generators must replay the very
    // same RNG draws, not statistically-similar ones.
    EXPECT_EQ(got[i].vm.arrival, want[i].vm.arrival) << what << " " << i;
    EXPECT_EQ(got[i].vm.lifetime, want[i].vm.lifetime) << what << " " << i;
  }
}

TEST(ArrivalSources, SyntheticMatchesMaterializedAtEveryBatchSize) {
  wl::SyntheticConfig cfg;
  cfg.count = 3000;
  const std::uint64_t seed = 42;
  const auto want = arrival_order(wl::generate_synthetic(cfg, seed));
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1024}}) {
    wl::SyntheticStreamSource source(cfg, seed);
    EXPECT_EQ(source.size_hint(), cfg.count);
    expect_items_equal(drain(source, batch), want,
                       "synthetic batch=" + std::to_string(batch));
    // Exhausted sources stay exhausted; rewind restarts the exact stream.
    std::vector<wl::ArrivalItem> buf(4);
    EXPECT_EQ(source.next_batch(std::span(buf.data(), buf.size())), 0u);
    source.rewind();
    expect_items_equal(drain(source, batch), want, "synthetic rewound");
  }
}

TEST(ArrivalSources, SyntheticSaveRestorePositionMidStream) {
  wl::SyntheticConfig cfg;
  cfg.count = 1000;
  wl::SyntheticStreamSource source(cfg, 7);
  const auto want = drain(source, 64);
  source.rewind();

  std::vector<wl::ArrivalItem> head(337);
  ASSERT_EQ(source.next_batch(std::span(head.data(), head.size())),
            head.size());
  std::ostringstream saved;
  source.save_position(saved);

  // A fresh source restored from the frozen position continues with the
  // identical tail -- the checkpoint/resume building block.
  wl::SyntheticStreamSource resumed(cfg, 7);
  std::istringstream in(saved.str());
  resumed.restore_position(in);
  const auto tail = drain(resumed, 50);
  ASSERT_EQ(tail.size(), want.size() - head.size());
  expect_items_equal(
      tail,
      std::vector<wl::ArrivalItem>(want.begin() + 337, want.end()),
      "synthetic restored tail");
}

TEST(ArrivalSources, AzureSubsetsMatchMaterialized) {
  for (const wl::AzureSpec& spec : wl::azure_all_subsets()) {
    const auto want = arrival_order(wl::generate_azure(spec, kDefaultSeed));
    wl::AzureStreamSource source(spec, kDefaultSeed);
    EXPECT_EQ(source.size_hint(), want.size()) << spec.label;
    expect_items_equal(drain(source, 64), want, spec.label);
    source.rewind();
    expect_items_equal(drain(source, 64), want, spec.label + " rewound");
  }
}

TEST(ArrivalSources, WorkloadSourceSortsUnsortedInput) {
  wl::SyntheticConfig cfg;
  cfg.count = 500;
  wl::Workload workload = wl::generate_synthetic(cfg, 7);
  Rng rng(13);
  for (std::size_t i = workload.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(workload[i - 1], workload[j]);
  }
  wl::WorkloadSource source(workload);
  expect_items_equal(drain(source, 33), arrival_order(workload),
                     "workload-source unsorted");
}

TEST(ArrivalSources, TraceSourceStreamsFileExactly) {
  wl::SyntheticConfig cfg;
  cfg.count = 400;
  wl::Workload workload = wl::generate_synthetic(cfg, 21);
  std::sort(workload.begin(), workload.end(),
            [](const wl::VmRequest& a, const wl::VmRequest& b) {
              return a.arrival < b.arrival;
            });
  const std::string path = testing::TempDir() + "risa_trace_stream.csv";
  wl::save_trace(path, workload);

  // Row order is the trace's generation order: indices are consecutive.
  wl::TraceStreamSource source(path);
  const auto got = drain(source, 57);
  expect_items_equal(got, arrival_order(workload), "trace stream");
  source.rewind();
  expect_items_equal(drain(source, 19), got, "trace rewound");
}

TEST(ArrivalSources, TraceSourceReportsFileLineOnBadRows) {
  const std::string dir = testing::TempDir();
  {
    std::ofstream os(dir + "risa_trace_unsorted.csv");
    os << "vm_id,cores,ram_mb,storage_mb,arrival,lifetime\n"
       << "0,2,2048,4096,5.0,10.0\n"
       << "1,2,2048,4096,3.0,10.0\n";  // line 3: arrival went backwards
  }
  wl::TraceStreamSource unsorted(dir + "risa_trace_unsorted.csv");
  std::vector<wl::ArrivalItem> buf(8);
  try {
    (void)unsorted.next_batch(std::span(buf.data(), buf.size()));
    FAIL() << "out-of-order trace row did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }

  {
    std::ofstream os(dir + "risa_trace_short_row.csv");
    os << "vm_id,cores,ram_mb,storage_mb,arrival,lifetime\n"
       << "0,2,2048,4096,5.0,10.0\n"
       << "\n"                 // blank lines count like an editor counts them
       << "1,2,2048\n";        // line 4: wrong column count
  }
  wl::TraceStreamSource short_row(dir + "risa_trace_short_row.csv");
  try {
    while (short_row.next_batch(std::span(buf.data(), buf.size())) > 0) {
    }
    FAIL() << "short trace row did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(ArrivalSources, MergeSourceOrdersByTimeAndRenumbers) {
  // Two tenants with deliberately colliding ids/indices and interleaved,
  // tying arrival times.
  wl::Workload a, b;
  for (std::uint32_t i = 0; i < 6; ++i) {
    wl::VmRequest vm;
    vm.id = VmId{i};
    vm.cores = 2;
    vm.ram_mb = 2048;
    vm.storage_mb = 4096;
    vm.lifetime = 10.0;
    vm.arrival = static_cast<double>(i * 2);      // 0 2 4 6 8 10
    a.push_back(vm);
    vm.arrival = static_cast<double>(i * 2 + (i % 2));  // 0 3 4 7 8 11
    b.push_back(vm);
  }
  std::vector<std::unique_ptr<wl::ArrivalSource>> children;
  children.push_back(std::make_unique<wl::WorkloadSource>(a));
  children.push_back(std::make_unique<wl::WorkloadSource>(b));
  wl::MergeSource merged(std::move(children));
  EXPECT_EQ(merged.size_hint(), a.size() + b.size());

  const auto got = drain(merged, 5);
  ASSERT_EQ(got.size(), a.size() + b.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Renumbered: fresh consecutive indices and ids in merge order.
    EXPECT_EQ(got[i].index, static_cast<std::uint32_t>(i));
    EXPECT_EQ(got[i].vm.id.value(), static_cast<std::uint32_t>(i));
    if (i > 0) {
      EXPECT_GE(got[i].vm.arrival, got[i - 1].vm.arrival);
    }
  }
  // Equal timestamps break toward the earlier child: both tenants emit at
  // t=0, 4 and 8; child a must come first each time.
  EXPECT_EQ(got[0].vm.arrival, 0.0);
  EXPECT_EQ(got[1].vm.arrival, 0.0);
  EXPECT_EQ(got[0].vm.cores, a[0].cores);

  merged.rewind();
  const auto again = drain(merged, 3);
  ASSERT_EQ(again.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(again[i].vm.arrival, got[i].vm.arrival) << i;
    EXPECT_EQ(again[i].index, got[i].index) << i;
  }
}

// --- Engine equivalence through the pull-based loop -------------------------

TEST(StreamingEngine, FigureMatrixSweepBitIdentical) {
  // The whole figure matrix through the streaming sweep path (synthetic +
  // Azure backends via WorkloadSpec::make_source) against the materialized
  // sweep: every cell fingerprint must match bit-for-bit.
  SweepSpec spec = SweepSpec::figure_matrix(kDefaultSeed);
  const auto materialized = SweepRunner(1).run(spec);
  spec.streaming = true;
  const auto streamed = SweepRunner(1).run(spec);
  ASSERT_EQ(streamed.size(), materialized.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(streamed[i].metrics),
              metrics_fingerprint(materialized[i].metrics))
        << "cell " << i;
    EXPECT_EQ(streamed[i].metrics.events_executed,
              materialized[i].metrics.events_executed)
        << "cell " << i;
  }
}

void expect_stream_equivalent(const wl::Workload& workload,
                              const std::string& label) {
  const std::string path = testing::TempDir() + "risa_stream_" + label + ".csv";
  for (const char* algo : {"NULB", "NALB", "RISA", "RISA-BF"}) {
    Engine engine(Scenario::paper_defaults(), algo);
    const SimMetrics ref = engine.run(workload, label);

    wl::WorkloadSource adapter(workload);
    const SimMetrics streamed = engine.run_stream(adapter, label);
    EXPECT_EQ(metrics_fingerprint(streamed), metrics_fingerprint(ref))
        << label << " / " << algo << " (WorkloadSource)";

    // Trace backend: only meaningful when the workload is already in
    // (arrival, index) order with positive lifetimes, i.e. what a trace
    // file can actually carry.
    const auto order = arrival_order(workload);
    bool traceable = true;
    for (std::size_t i = 0; traceable && i < order.size(); ++i) {
      traceable = order[i].index == i && workload[i].lifetime > 0.0;
    }
    if (traceable) {
      wl::save_trace(path, workload);
      wl::TraceStreamSource trace(path);
      const SimMetrics traced = engine.run_stream(trace, label);
      EXPECT_EQ(metrics_fingerprint(traced), metrics_fingerprint(ref))
          << label << " / " << algo << " (TraceStreamSource)";
    }
  }
}

TEST(StreamingEngine, TieHeavyWorkloadAllBackends) {
  // Bursts of identical arrivals with departures placed on arrival
  // instants: the merge tie-break rules must behave identically when the
  // arrivals come from a pulled ring instead of a sorted cursor.
  wl::SyntheticConfig cfg;
  cfg.count = 240;
  wl::Workload workload = wl::generate_synthetic(cfg, 99);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    workload[i].arrival = static_cast<double>((i / 8) * 10);
    switch (i % 3) {
      case 0: workload[i].lifetime = 0.5; break;
      case 1: workload[i].lifetime = 10.0; break;   // dep == next burst
      default: workload[i].lifetime = 35.0; break;  // dep between bursts
    }
  }
  expect_stream_equivalent(workload, "ties");
}

TEST(StreamingEngine, UnsortedWorkloadThroughAdapter) {
  wl::SyntheticConfig cfg;
  cfg.count = 300;
  wl::Workload workload = wl::generate_synthetic(cfg, 7);
  Rng rng(13);
  for (std::size_t i = workload.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(workload[i - 1], workload[j]);
  }
  expect_stream_equivalent(workload, "unsorted");
}

TEST(StreamingEngine, RejectsOutOfOrderSource) {
  wl::Workload backwards;
  for (std::uint32_t i = 0; i < 2; ++i) {
    wl::VmRequest vm;
    vm.id = VmId{i};
    vm.cores = 2;
    vm.ram_mb = 2048;
    vm.storage_mb = 4096;
    vm.lifetime = 10.0;
    vm.arrival = 10.0 - i;  // decreasing
    backwards.push_back(vm);
  }
  // WorkloadSource sorts, so violate the contract directly: a merge of
  // pre-sorted children is fine, but a raw adapter around an unsorted
  // vector that *claims* to be sorted is what the engine must catch.
  class Raw final : public wl::ArrivalSource {
   public:
    explicit Raw(const wl::Workload& w) : w_(&w) {}
    std::size_t next_batch(std::span<wl::ArrivalItem> out) override {
      std::size_t n = 0;
      while (n < out.size() && i_ < w_->size()) {
        out[n].vm = (*w_)[i_];
        out[n].index = static_cast<std::uint32_t>(i_);
        ++i_;
        ++n;
      }
      return n;
    }
    void rewind() override { i_ = 0; }
    void save_position(std::ostream&) const override {}
    void restore_position(std::istream&) override {}

   private:
    const wl::Workload* w_;
    std::size_t i_ = 0;
  };
  Raw raw(backwards);
  Engine engine(Scenario::paper_defaults(), "RISA");
  EXPECT_THROW((void)engine.run_stream(raw, "backwards"),
               std::invalid_argument);
}

// --- Checkpoint / resume ----------------------------------------------------

/// Run `count` synthetic VMs streaming with a checkpoint every
/// `every_events` events, then resume each captured checkpoint in a fresh
/// engine and demand the uninterrupted run's exact fingerprint.
void expect_resume_bit_identical(const FaultPlan* faults,
                                 const MigrationPlan* migrations) {
  wl::SyntheticConfig cfg;
  cfg.count = 4000;

  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_fault_plan(faults);
  engine.set_migration_plan(migrations);

  std::vector<std::string> checkpoints;
  CheckpointPolicy policy;
  policy.every_events = 1500;
  policy.emit = [&checkpoints](const std::string& bytes) {
    checkpoints.push_back(bytes);
  };

  wl::SyntheticStreamSource source(cfg, kDefaultSeed);
  const SimMetrics full = engine.run_stream(source, "ckpt", &policy);
  const std::string want = metrics_fingerprint(full);
  ASSERT_GE(checkpoints.size(), 2u) << "cadence produced too few checkpoints";

  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    Engine fresh(Scenario::paper_defaults(), "RISA");
    fresh.set_fault_plan(faults);
    fresh.set_migration_plan(migrations);
    wl::SyntheticStreamSource restored(cfg, kDefaultSeed);
    std::istringstream in(checkpoints[c]);
    const SimMetrics resumed = fresh.resume_stream(in, restored);
    EXPECT_EQ(metrics_fingerprint(resumed), want) << "checkpoint " << c;
    EXPECT_EQ(resumed.events_executed, full.events_executed)
        << "checkpoint " << c;
    EXPECT_EQ(resumed.killed, full.killed) << "checkpoint " << c;
    EXPECT_EQ(resumed.migrated, full.migrated) << "checkpoint " << c;
  }
}

TEST(StreamingCheckpoint, ResumeMatchesUninterruptedRun) {
  expect_resume_bit_identical(nullptr, nullptr);
}

TEST(StreamingCheckpoint, ResumeWithFaultsAndMigrations) {
  FaultPlan faults;
  faults.seed = 5;
  faults.retry.max_attempts = 2;
  faults.retry.delay_tu = 3.0;
  FaultAction fail;
  fail.kind = FaultAction::Kind::Fail;
  fail.at_time = 40.0;
  fail.random_boxes = 2;
  faults.actions.push_back(fail);
  FaultAction repair = fail;
  repair.kind = FaultAction::Kind::Repair;
  repair.at_time = 90.0;
  faults.actions.push_back(repair);
  FaultAction link_fail;
  link_fail.kind = FaultAction::Kind::LinkFail;
  link_fail.at_time = 60.0;
  link_fail.random_links = 1;
  faults.actions.push_back(link_fail);
  faults.validate();

  MigrationPlan migrations;
  migrations.period_tu = 25.0;
  migrations.per_sweep_budget = 4;
  migrations.validate();

  expect_resume_bit_identical(&faults, &migrations);
}

TEST(StreamingCheckpoint, PreArenaV1FixtureRestoresBitIdentically) {
  // tests/data/prearena_v1.ckpt is a format-v1 "RSK1" checkpoint captured
  // from the engine BEFORE the VM record table moved from U32Map to
  // SlotArena (DESIGN.md §13), mid-run with boxes offline, a link down,
  // retries pending, and migrations mid-schedule.  The arena swap must be
  // checkpoint-transparent: serialization walks records in ascending-index
  // order, so the bytes are container-independent both ways.  Resuming the
  // committed file must reproduce the uninterrupted run's fingerprint --
  // which is both re-derived live and pinned in the committed
  // prearena_v1.fingerprint to catch drift in the run itself.
  FaultPlan faults;
  faults.seed = 5;
  faults.retry.max_attempts = 2;
  faults.retry.delay_tu = 3.0;
  FaultAction fail;
  fail.kind = FaultAction::Kind::Fail;
  fail.at_time = 20000.0;
  fail.random_boxes = 2;
  faults.actions.push_back(fail);
  FaultAction repair = fail;
  repair.kind = FaultAction::Kind::Repair;
  repair.at_time = 35000.0;
  faults.actions.push_back(repair);
  FaultAction link_fail;
  link_fail.kind = FaultAction::Kind::LinkFail;
  link_fail.at_time = 22000.0;
  link_fail.random_links = 1;
  faults.actions.push_back(link_fail);
  FaultAction link_repair;
  link_repair.kind = FaultAction::Kind::LinkRepair;
  link_repair.at_time = 36000.0;
  link_repair.random_links = 1;
  faults.actions.push_back(link_repair);
  faults.validate();

  MigrationPlan migrations;
  migrations.period_tu = 25.0;
  migrations.per_sweep_budget = 4;
  migrations.validate();

  wl::SyntheticConfig cfg;
  cfg.count = 4000;

  // The uninterrupted run under today's engine.
  Engine full_engine(Scenario::paper_defaults(), "RISA");
  full_engine.set_fault_plan(&faults);
  full_engine.set_migration_plan(&migrations);
  wl::SyntheticStreamSource full_source(cfg, kDefaultSeed);
  const SimMetrics full = full_engine.run_stream(full_source, "prearena");
  const std::string want = metrics_fingerprint(full);

  // The committed fingerprint pins the run configuration itself: if this
  // fails, the engine's simulated behavior drifted (not the checkpoint).
  std::ifstream fp_in(RISA_TEST_DATA_DIR "/prearena_v1.fingerprint");
  ASSERT_TRUE(fp_in.good()) << "missing committed fingerprint fixture";
  std::string committed;
  std::getline(fp_in, committed);
  ASSERT_EQ(want, committed);

  // Resume the pre-arena bytes.
  std::ifstream ckpt(RISA_TEST_DATA_DIR "/prearena_v1.ckpt",
                     std::ios::binary);
  ASSERT_TRUE(ckpt.good()) << "missing committed checkpoint fixture";
  Engine resumed_engine(Scenario::paper_defaults(), "RISA");
  resumed_engine.set_fault_plan(&faults);
  resumed_engine.set_migration_plan(&migrations);
  wl::SyntheticStreamSource restored(cfg, kDefaultSeed);
  const SimMetrics resumed = resumed_engine.resume_stream(ckpt, restored);
  EXPECT_EQ(metrics_fingerprint(resumed), want);
  EXPECT_EQ(resumed.events_executed, full.events_executed);
  EXPECT_EQ(resumed.placed, full.placed);
  EXPECT_EQ(resumed.killed, full.killed);
  EXPECT_EQ(resumed.migrated, full.migrated);
  EXPECT_EQ(resumed.requeued, full.requeued);
  // The fixture really did capture lifecycle machinery in flight.
  EXPECT_GT(full.killed, 0u);
  EXPECT_GT(full.migrated, 0u);
  EXPECT_GT(full.requeued, 0u);
}

TEST(StreamingCheckpoint, ResumeRejectsAlgorithmMismatch) {
  wl::SyntheticConfig cfg;
  cfg.count = 2000;
  Engine engine(Scenario::paper_defaults(), "RISA");
  std::vector<std::string> checkpoints;
  CheckpointPolicy policy;
  policy.every_events = 1000;
  policy.emit = [&checkpoints](const std::string& b) {
    checkpoints.push_back(b);
  };
  wl::SyntheticStreamSource source(cfg, kDefaultSeed);
  (void)engine.run_stream(source, "ckpt", &policy);
  ASSERT_FALSE(checkpoints.empty());

  Engine other(Scenario::paper_defaults(), "NULB");
  wl::SyntheticStreamSource restored(cfg, kDefaultSeed);
  std::istringstream in(checkpoints.front());
  EXPECT_THROW((void)other.resume_stream(in, restored), std::runtime_error);
}

// --- Satellite regressions --------------------------------------------------

TEST(Log2HistogramTest, PercentilesStayResolvedAtScale) {
  Log2Histogram h;
  EXPECT_THROW((void)h.percentile(50.0), std::logic_error);

  // The BENCH_engine 5M-row failure mode: millions of small samples plus a
  // handful of giant outliers.  A range-scaled linear histogram collapses
  // to p50 == p99; log-scale bins must keep them an order of magnitude
  // apart.
  for (int i = 0; i < 5'000'000; ++i) h.add(200.0 + (i % 97));
  for (int i = 0; i < 1'000; ++i) h.add(5.0e9);
  const double p50 = h.percentile(50.0);
  const double p99 = h.percentile(99.0);
  EXPECT_NEAR(p50, 250.0, 250.0 / 16.0 + 16.0);  // 1/sub_bins relative error
  EXPECT_NEAR(p99, 297.0, 297.0 / 16.0 + 16.0);
  EXPECT_LT(p50, p99);
  EXPECT_GT(h.percentile(100.0), 4.0e9);
  EXPECT_EQ(h.total(), 5'001'000);

  // Read-out scaling (the engine's ticks->ns calibration).
  h.set_value_scale(2.0);
  EXPECT_EQ(h.percentile(50.0), 2.0 * p50);
  h.clear();
  EXPECT_EQ(h.total(), 0);
  EXPECT_THROW((void)h.percentile(50.0), std::logic_error);
}

TEST(BoxRestore, RestoresHolePatternsExactly) {
  topo::Box box(BoxId{0}, RackId{0}, ResourceType::Cpu, 0, {4, 4, 4});
  topo::BoxAllocation first, second;
  ASSERT_TRUE(box.allocate_into(4, first));   // fills brick 0
  ASSERT_TRUE(box.allocate_into(4, second));  // fills brick 1
  box.release(first);                         // hole: [4 free, 0, 4 free]
  const std::vector<Units> holes = box.available_by_brick();
  ASSERT_EQ(holes, (std::vector<Units>{4, 0, 4}));

  // A first-fit replay would compact the occupancy into brick 0;
  // restore_bricks must reproduce the recorded holes verbatim.
  topo::Box fresh(BoxId{0}, RackId{0}, ResourceType::Cpu, 0, {4, 4, 4});
  fresh.restore_bricks(holes);
  EXPECT_EQ(fresh.available_by_brick(), holes);
  EXPECT_EQ(fresh.allocated_units(), 4u);
  EXPECT_EQ(fresh.available_units(), 8u);

  EXPECT_THROW(fresh.restore_bricks({4, 0}), std::invalid_argument);
  EXPECT_THROW(fresh.restore_bricks({4, 0, 5}), std::invalid_argument);
}

}  // namespace
}  // namespace risa::sim
