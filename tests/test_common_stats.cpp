// Statistical accumulators: exactness of the time-weighted integrals that
// produce the paper's "average utilization / power" numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace risa {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(TimeWeightedMean, PiecewiseConstantIntegralIsExact) {
  TimeWeightedMean twm;
  twm.update(0.0, 1.0);   // value 1 over [0, 10)
  twm.update(10.0, 3.0);  // value 3 over [10, 20)
  twm.update(20.0, 0.0);  // value 0 over [20, 40]
  // integral = 1*10 + 3*10 + 0*20 = 40; mean over [0, 40] = 1.0.
  EXPECT_DOUBLE_EQ(twm.integral(40.0), 40.0);
  EXPECT_DOUBLE_EQ(twm.mean(40.0), 1.0);
  EXPECT_DOUBLE_EQ(twm.peak(), 3.0);
  EXPECT_DOUBLE_EQ(twm.current(), 0.0);
}

TEST(TimeWeightedMean, RepeatedSameTimeUpdatesKeepLastValue) {
  TimeWeightedMean twm;
  twm.update(0.0, 5.0);
  twm.update(0.0, 2.0);  // zero-width segment contributes nothing
  EXPECT_DOUBLE_EQ(twm.mean(10.0), 2.0);
}

TEST(TimeWeightedMean, RejectsTimeTravel) {
  TimeWeightedMean twm;
  twm.update(5.0, 1.0);
  EXPECT_THROW(twm.update(4.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)twm.integral(4.0), std::invalid_argument);
}

TEST(TimeWeightedMean, EmptyMeansZero) {
  const TimeWeightedMean twm;
  EXPECT_TRUE(twm.empty());
  EXPECT_DOUBLE_EQ(twm.mean(100.0), 0.0);
  EXPECT_DOUBLE_EQ(twm.integral(100.0), 0.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 10; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(10.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(91.0), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 10.0);
  EXPECT_THROW((void)p.percentile(101.0), std::invalid_argument);
}

TEST(Percentiles, EmptyThrows) {
  const Percentiles p;
  EXPECT_THROW((void)p.percentile(50.0), std::logic_error);
}

TEST(CounterSet, AccumulatesAndPreservesOrder) {
  CounterSet c;
  c.increment("no-network");
  c.increment("no-compute", 2);
  c.increment("no-network", 3);
  EXPECT_EQ(c.get("no-network"), 4);
  EXPECT_EQ(c.get("no-compute"), 2);
  EXPECT_EQ(c.get("unknown"), 0);
  ASSERT_EQ(c.items().size(), 2u);
  EXPECT_EQ(c.items()[0].first, "no-network");  // insertion order
}

}  // namespace
}  // namespace risa
