// The sweep subsystem: matrix expansion, thread-count determinism over the
// full figure matrix, engine reuse equivalence, and the unified emitters.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

wl::Workload small_workload(std::size_t n = 200, std::uint64_t seed = 42) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, seed);
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.scenarios = {{"paper", Scenario::paper_defaults()}};
  spec.workloads = {WorkloadSpec::synthetic(200)};
  spec.seeds = {42};
  spec.algorithms = {"NULB", "RISA"};
  return spec;
}

TEST(SweepSpec, CellIndexMatchesExpansionOrder) {
  SweepSpec spec;
  spec.scenarios = {{"a", Scenario::paper_defaults()},
                    {"b", Scenario::paper_defaults()}};
  spec.workloads = {WorkloadSpec::synthetic(10), WorkloadSpec::synthetic(20),
                    WorkloadSpec::synthetic(30)};
  spec.seeds = {1, 2};
  spec.algorithms = {"RISA", "NULB", "NALB", "RISA-BF"};
  ASSERT_EQ(spec.cell_count(), 2u * 3u * 2u * 4u);
  std::size_t expect = 0;
  for (std::size_t sc = 0; sc < 2; ++sc) {
    for (std::size_t w = 0; w < 3; ++w) {
      for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t a = 0; a < 4; ++a) {
          EXPECT_EQ(spec.cell_index(sc, w, s, a), expect++);
        }
      }
    }
  }
}

TEST(SweepSpec, ValidateRejectsEmptyAxes) {
  SweepSpec spec = small_spec();
  spec.algorithms.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.workloads.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SweepRunner, ResultsCarryCellCoordinates) {
  const auto results = SweepRunner(2).run(small_spec());
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].cell, i);
    EXPECT_EQ(results[i].scenario, "paper");
    EXPECT_EQ(results[i].seed, 42u);
    EXPECT_EQ(results[i].metrics.workload, "Synthetic");
  }
  EXPECT_EQ(results[0].metrics.algorithm, "NULB");
  EXPECT_EQ(results[1].metrics.algorithm, "RISA");
}

TEST(SweepRunner, MatchesDirectEngineRuns) {
  const auto results = SweepRunner(4).run(small_spec());
  const wl::Workload workload = small_workload();
  for (const char* algo : {"NULB", "RISA"}) {
    Engine engine(Scenario::paper_defaults(), algo);
    const SimMetrics direct = engine.run(workload, "Synthetic");
    const SimMetrics& swept =
        results[algo == std::string("NULB") ? 0 : 1].metrics;
    EXPECT_EQ(metrics_fingerprint(direct), metrics_fingerprint(swept));
  }
}

// The headline determinism contract: the ENTIRE figure matrix (Figures 5,
// 7-12: synthetic + all three Azure subsets x all four algorithms) yields
// bit-identical SimMetrics at 1 and 8 threads.
TEST(SweepRunner, FullFigureMatrixIsDeterministicAcrossThreadCounts) {
  const SweepSpec spec = SweepSpec::figure_matrix(kDefaultSeed);
  const auto serial = SweepRunner(1).run(spec);
  const auto threaded = SweepRunner(8).run(spec);
  ASSERT_EQ(serial.size(), spec.cell_count());
  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(serial[i].metrics),
              metrics_fingerprint(threaded[i].metrics))
        << "cell " << i << " (" << serial[i].metrics.workload << ", "
        << serial[i].metrics.algorithm << ")";
    // Timing is measured (single-threaded within the cell) even though it
    // is excluded from the fingerprint.
    EXPECT_GT(threaded[i].metrics.scheduler_exec_seconds, 0.0);
  }
}

// Engine reuse: two consecutive run() calls on one engine match two fresh
// engines bit-for-bit, for every algorithm including the seeded RANDOM
// baseline (whose RNG must rewind on reset).
TEST(EngineReuse, ConsecutiveRunsMatchFreshEnginesBitForBit) {
  const wl::Workload workload = small_workload(300, 7);
  for (const char* algo : {"NULB", "NALB", "RISA", "RISA-BF", "RANDOM"}) {
    Engine reused(Scenario::paper_defaults(), algo);
    const SimMetrics r1 = reused.run(workload, "t");
    const SimMetrics r2 = reused.run(workload, "t");

    Engine fresh1(Scenario::paper_defaults(), algo);
    Engine fresh2(Scenario::paper_defaults(), algo);
    const SimMetrics f1 = fresh1.run(workload, "t");
    const SimMetrics f2 = fresh2.run(workload, "t");

    EXPECT_EQ(metrics_fingerprint(r1), metrics_fingerprint(f1)) << algo;
    EXPECT_EQ(metrics_fingerprint(r2), metrics_fingerprint(f2)) << algo;
    EXPECT_EQ(metrics_fingerprint(r1), metrics_fingerprint(r2)) << algo;
  }
}

TEST(EngineReuse, SetAlgorithmRebindsWithoutTopologyRebuild) {
  const wl::Workload workload = small_workload();
  Engine engine(Scenario::paper_defaults(), "NULB");
  const topo::Cluster* cluster_before = &engine.cluster();
  const net::Fabric* fabric_before = &engine.fabric();
  const SimMetrics nulb = engine.run(workload, "t");

  engine.set_algorithm("RISA");
  EXPECT_EQ(engine.algorithm(), "RISA");
  const SimMetrics risa = engine.run(workload, "t");
  EXPECT_EQ(&engine.cluster(), cluster_before);
  EXPECT_EQ(&engine.fabric(), fabric_before);
  EXPECT_EQ(risa.algorithm, "RISA");
  EXPECT_NE(nulb.inter_rack_placements, risa.inter_rack_placements);

  Engine fresh(Scenario::paper_defaults(), "RISA");
  EXPECT_EQ(metrics_fingerprint(fresh.run(workload, "t")),
            metrics_fingerprint(risa));
}

TEST(EngineReuse, RunAllAlgorithmsMatchesFreshEngines) {
  const wl::Workload workload = small_workload();
  const auto pooled =
      run_all_algorithms(Scenario::paper_defaults(), workload, "t");
  ASSERT_EQ(pooled.size(), 4u);
  const char* algos[] = {"NULB", "NALB", "RISA", "RISA-BF"};
  for (std::size_t i = 0; i < 4; ++i) {
    Engine fresh(Scenario::paper_defaults(), algos[i]);
    EXPECT_EQ(metrics_fingerprint(fresh.run(workload, "t")),
              metrics_fingerprint(pooled[i]));
  }
}

TEST(Sweep, RecordsTimelineAndLatencyPerCell) {
  SweepSpec spec = small_spec();
  spec.record_timeline = true;
  spec.record_latency = true;
  const auto results = SweepRunner(2).run(spec);
  for (const SweepResult& r : results) {
    EXPECT_GT(r.timeline.size(), 0u);
    EXPECT_EQ(r.latency_ns.size(), r.metrics.total_vms);
  }
}

TEST(Sweep, FingerprintIgnoresSchedulerTiming) {
  Engine engine(Scenario::paper_defaults(), "RISA");
  const SimMetrics a = engine.run(small_workload(), "t");
  SimMetrics b = a;
  b.scheduler_exec_seconds *= 100.0;
  EXPECT_EQ(metrics_fingerprint(a), metrics_fingerprint(b));
  b.placed += 1;
  EXPECT_NE(metrics_fingerprint(a), metrics_fingerprint(b));
}

TEST(Sweep, UnifiedEmittersCoverEveryCell) {
  SweepSpec spec = small_spec();
  spec.record_latency = true;
  const auto results = SweepRunner(1).run(spec);

  const std::string json = sweep_json("unit", results);
  EXPECT_NE(json.find("\"benchmark\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"NULB\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"RISA\""), std::string::npos);

  const std::string csv = sweep_csv(results);
  // Header + one row per cell.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + results.size());

  const auto entries = scheduler_bench_entries(results);
  ASSERT_EQ(entries.size(), results.size());
  EXPECT_EQ(entries[0].algorithm, "NULB");
  EXPECT_EQ(entries[0].total_vms, 200u);
  EXPECT_GT(entries[0].p99_ns, 0.0);
  EXPECT_GE(entries[0].p99_ns, entries[0].p50_ns);
}

TEST(Sweep, EntriesRequireRecordedLatency) {
  const auto results = SweepRunner(1).run(small_spec());
  EXPECT_THROW((void)scheduler_bench_entries(results), std::invalid_argument);
}

TEST(Threads, ResolveThreadCountPrefersExplicitValue) {
  EXPECT_EQ(resolve_thread_count(3), 3);
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(resolve_thread_count(-2), 1);
}

TEST(Threads, EnvOverrideDrivesDefault) {
  ASSERT_EQ(setenv("RISA_THREADS", "5", 1), 0);
  EXPECT_EQ(default_thread_count(), 5);
  ASSERT_EQ(setenv("RISA_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_thread_count(), 1);
  ASSERT_EQ(unsetenv("RISA_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1);
}

TEST(Threads, ConsumeThreadsFlagCompactsArgv) {
  const char* raw[] = {"prog", "--benchmark_min_time=0.01s", "--threads=6",
                       "positional"};
  char* argv[4];
  for (int i = 0; i < 4; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 4;
  EXPECT_EQ(consume_threads_flag(argc, argv), 6);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--benchmark_min_time=0.01s");
  EXPECT_STREQ(argv[2], "positional");
  // Absent flag resolves the fallback.
  EXPECT_EQ(consume_threads_flag(argc, argv, 1), 1);
  EXPECT_EQ(argc, 3);
}

}  // namespace
}  // namespace risa::sim
