// §4.3 toy examples: exact reproduction of the paper's Tables 3-4 walk-
// throughs, including the documented arithmetic error in Table 4's RISA-BF
// column (total demand 100 cores cannot fit in 96 available; see DESIGN.md
// §2.7 / EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <vector>

#include "core/contention.hpp"
#include "core/nalb.hpp"
#include "core/nulb.hpp"
#include "core/risa.hpp"
#include "sim/experiments.hpp"

namespace risa::core {
namespace {

using sim::make_table3_stack;
using sim::make_table4_stack;
using sim::toy_vm;

// The typical VM of toy example 1: 8 cores, 16 GB RAM, 128 GB storage.
wl::VmRequest example1_vm() { return toy_vm(0, 8, 16.0, 128.0); }

TEST(ToyExample1, ContentionRatiosMatchPaper) {
  auto stack = make_table3_stack();
  const UnitVector demand =
      example1_vm().units(stack->cluster().config().unit_scale);
  const auto cr = contention_ratios(
      demand, cluster_availability(stack->cluster()));
  // Paper: CR(CPU) = 0.08, CR(RAM) = 0.25, CR(storage) = 0.17.
  EXPECT_NEAR(cr[ResourceType::Cpu], 8.0 / 96.0, 1e-12);
  EXPECT_NEAR(cr[ResourceType::Ram], 16.0 / 64.0, 1e-12);
  EXPECT_NEAR(cr[ResourceType::Storage], 2.0 / 12.0, 1e-12);
  EXPECT_EQ(most_contended(cr), ResourceType::Ram);
}

TEST(ToyExample1, NulbPicksInterRack212) {
  auto stack = make_table3_stack();
  NulbAllocator nulb(stack->context());
  auto placed = nulb.try_place(example1_vm());
  ASSERT_TRUE(placed.ok());
  const Placement& p = placed.value();
  // Paper: "the CPU, RAM, and storage ids will be (2, 1, 2)".
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Cpu)).index_in_type(), 2u);
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Ram)).index_in_type(), 1u);
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Storage)).index_in_type(),
            2u);
  // CPU in rack 1, RAM in rack 0 -> inter-rack assignment.
  EXPECT_TRUE(p.inter_rack);
  EXPECT_NE(p.rack(ResourceType::Cpu), p.rack(ResourceType::Ram));
  nulb.release(p);
}

TEST(ToyExample1, NalbPicksSameBoxesAsNulbOnIdleFabric) {
  auto stack = make_table3_stack();
  NalbAllocator nalb(stack->context());
  auto placed = nalb.try_place(example1_vm());
  ASSERT_TRUE(placed.ok());
  const Placement& p = placed.value();
  // With an unloaded fabric the bandwidth reordering is a stable no-op, so
  // NALB makes NULB's (2, 1, 2) choice -- the reason the paper's Figure 5
  // reports identical counts for both baselines.
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Cpu)).index_in_type(), 2u);
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Ram)).index_in_type(), 1u);
  EXPECT_EQ(stack->cluster().box(p.box(ResourceType::Storage)).index_in_type(),
            2u);
  nalb.release(p);
}

TEST(ToyExample1, RisaPicksIntraRack222) {
  auto stack = make_table3_stack();
  RisaAllocator risa(stack->context());
  // Paper: INTRA_RACK_POOL = [1]; VM assigned to ids (2, 2, 2), no
  // inter-rack utilization.
  const UnitVector demand =
      example1_vm().units(stack->cluster().config().unit_scale);
  const auto pool = risa.intra_rack_pool(demand);
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool[0], RackId{1});

  auto placed = risa.try_place(example1_vm());
  ASSERT_TRUE(placed.ok());
  const Placement& p = placed.value();
  for (ResourceType t : kAllResources) {
    EXPECT_EQ(stack->cluster().box(p.box(t)).index_in_type(), 2u)
        << name(t);
    EXPECT_EQ(p.rack(t), RackId{1});
  }
  EXPECT_FALSE(p.inter_rack);
  EXPECT_FALSE(p.used_fallback);
  risa.release(p);
}

TEST(ToyExample1, RisaBfAlsoStaysIntraRack) {
  auto stack = make_table3_stack();
  auto risa_bf = make_risa_bf(stack->context());
  auto placed = risa_bf->try_place(example1_vm());
  ASSERT_TRUE(placed.ok());
  EXPECT_FALSE(placed->inter_rack);
}

// Toy example 2: CPU-only sequence 15, 10, 30, 12, 5, 8, 16, 4 against rack
// 1 boxes with 64 and 32 available cores.
constexpr std::int64_t kSequence[] = {15, 10, 30, 12, 5, 8, 16, 4};

std::vector<wl::VmRequest> example2_vms() {
  std::vector<wl::VmRequest> vms;
  for (std::size_t i = 0; i < std::size(kSequence); ++i) {
    // "Considering all other compute and network resource requirements are
    // met": tiny RAM/storage demands that always fit.
    vms.push_back(toy_vm(static_cast<std::uint32_t>(i), kSequence[i],
                         /*ram_gb=*/1.0, /*sto_gb=*/64.0));
  }
  return vms;
}

TEST(ToyExample2, RisaNextFitReproducesTable4Column) {
  auto stack = make_table4_stack();
  RisaAllocator risa(stack->context());
  // Paper Table 4 RISA column: rack-1 CPU box ids 0,0,0,1,1,1,NA,1.
  const int expected_box[] = {0, 0, 0, 1, 1, 1, -1, 1};
  std::size_t i = 0;
  for (const wl::VmRequest& vm : example2_vms()) {
    auto placed = risa.try_place(vm);
    if (expected_box[i] < 0) {
      EXPECT_FALSE(placed.ok()) << "VM " << i << " should drop";
      EXPECT_EQ(placed.error(), DropReason::NoComputeResources);
    } else {
      ASSERT_TRUE(placed.ok()) << "VM " << i;
      const topo::Box& box =
          stack->cluster().box(placed->box(ResourceType::Cpu));
      EXPECT_EQ(box.rack(), RackId{1}) << "VM " << i;
      // Rack-1 CPU boxes have per-type indices 2 and 3; Table 4 numbers
      // them 0 and 1 within the rack.
      EXPECT_EQ(box.index_in_type() - 2u,
                static_cast<std::uint32_t>(expected_box[i]))
          << "VM " << i;
    }
    ++i;
  }
}

TEST(ToyExample2, RisaBfReproducesTable4ColumnModuloPaperArithmeticError) {
  auto stack = make_table4_stack();
  auto risa_bf = make_risa_bf(stack->context());
  // Paper Table 4 RISA-BF column: 1,1,0,0,1,0,0,0 -- but VM 6 (16 cores)
  // cannot fit: after VMs 0-5 the boxes hold 14 and 2 free cores, and total
  // demand (100) exceeds total availability (96).  We reproduce every
  // feasible row and assert the drop (documented paper erratum).
  const int expected_box[] = {1, 1, 0, 0, 1, 0, -1, 0};
  std::size_t i = 0;
  for (const wl::VmRequest& vm : example2_vms()) {
    auto placed = risa_bf->try_place(vm);
    if (expected_box[i] < 0) {
      EXPECT_FALSE(placed.ok()) << "VM " << i << " must drop (paper erratum)";
    } else {
      ASSERT_TRUE(placed.ok()) << "VM " << i;
      const topo::Box& box =
          stack->cluster().box(placed->box(ResourceType::Cpu));
      EXPECT_EQ(box.index_in_type() - 2u,
                static_cast<std::uint32_t>(expected_box[i]))
          << "VM " << i;
    }
    ++i;
  }
}

TEST(ToyExample2, TotalDemandExceedsAvailabilityByFour) {
  // The erratum, arithmetically: sum of the sequence vs rack-1 availability.
  std::int64_t demand = 0;
  for (std::int64_t c : kSequence) demand += c;
  EXPECT_EQ(demand, 100);
  auto stack = make_table4_stack();
  EXPECT_EQ(stack->cluster().rack(RackId{1}).total_available(ResourceType::Cpu),
            96);
}

TEST(ToyExample2Corrected, BestFitBeatsNextFitWhenPackingIsTight) {
  // A corrected variant demonstrating the effect Table 4 intends: boxes at
  // 33/32 free cores, requests 32, 31, 2.  Next-fit strands a core in each
  // box and drops the last VM; best-fit packs exactly and places all three.
  auto build = [] {
    auto stack = std::make_unique<sim::ToyStack>([] {
      auto cfg = topo::ClusterConfig::toy_example();
      cfg.box_units_override = UnitVector{33, 64, 8};
      return cfg;
    }());
    stack->set_availability(ResourceType::Cpu, 0, 0);  // rack 0 unusable
    stack->set_availability(ResourceType::Cpu, 1, 0);
    stack->set_availability(ResourceType::Cpu, 3, 32);  // rack 1: 33 and 32
    return stack;
  };

  const std::int64_t requests[] = {32, 31, 2};

  auto nf_stack = build();
  RisaAllocator next_fit(nf_stack->context());
  int nf_placed = 0;
  for (std::size_t i = 0; i < std::size(requests); ++i) {
    if (next_fit.try_place(toy_vm(static_cast<std::uint32_t>(i), requests[i],
                                  1.0, 64.0))
            .ok()) {
      ++nf_placed;
    }
  }

  auto bf_stack = build();
  auto best_fit = make_risa_bf(bf_stack->context());
  int bf_placed = 0;
  for (std::size_t i = 0; i < std::size(requests); ++i) {
    if (best_fit
            ->try_place(toy_vm(static_cast<std::uint32_t>(i), requests[i],
                               1.0, 64.0))
            .ok()) {
      ++bf_placed;
    }
  }

  EXPECT_EQ(nf_placed, 2);  // next-fit drops the 2-core VM
  EXPECT_EQ(bf_placed, 3);  // best-fit places everything
}

}  // namespace
}  // namespace risa::core
