// Admission windows (DESIGN.md §13): same-run arrivals admitted under one
// profiler bracket with deferred signal samples and batched departure
// pushes must be *invisible* -- bit-identical metrics fingerprints against
// per-event admission (set_admission_batching(false)), including under
// tie-storm arrivals with zero-lifetime VMs, faults, retries, and
// migrations in flight, with a timeline attached, and across sweep thread
// counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "sim/timeline.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

// Synthetic arrivals are cumulative-exponential doubles -- no two are ever
// equal, which is exactly the case admission windows must NOT depend on.
// Quantize arrivals into coarse buckets so dozens of VMs share each
// timestamp (floor keeps the sequence nondecreasing), and plant
// zero-lifetime VMs whose departures tie with later arrivals at the same
// instant -- the arrival-wins-every-tie merge rule under maximum stress.
wl::Workload tie_storm_workload(std::size_t n, std::uint64_t seed) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  wl::Workload w = wl::generate_synthetic(cfg, seed);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i].arrival = std::floor(w[i].arrival / 40.0) * 40.0;
    if (i % 7 == 0) w[i].lifetime = 0.0;
    if (i % 5 == 0) w[i].lifetime = 40.0;  // departure ties a later bucket
  }
  return w;
}

FaultPlan storm_faults() {
  FaultPlan plan;
  plan.seed = 99;
  plan.retry.max_attempts = 2;
  plan.retry.delay_tu = 7.0;
  // Every algorithm places into the first boxes early on, so failing them
  // mid-storm guarantees kills + retries; the repair ends the degraded
  // window inside the run.
  for (std::uint32_t b : {0u, 1u, 2u, 3u}) {
    FaultAction fail;
    fail.kind = FaultAction::Kind::Fail;
    fail.at_time = 90.5;  // between tie buckets (multiples of 40)
    fail.box = b;
    plan.actions.push_back(fail);
    FaultAction repair;
    repair.kind = FaultAction::Kind::Repair;
    repair.at_time = 2500.0;
    repair.box = b;
    plan.actions.push_back(repair);
  }
  return plan;
}

MigrationPlan storm_migrations() {
  MigrationPlan plan;
  plan.period_tu = 120.0;
  plan.per_sweep_budget = 3;
  plan.total_budget = 100;
  return plan;
}

TEST(AdmissionWindows, TieStormMatchesPerEventAdmission) {
  const wl::Workload storm = tie_storm_workload(500, 31);
  Scenario scenario = Scenario::paper_defaults();
  scenario.faults = storm_faults();
  scenario.migrations = storm_migrations();

  std::uint64_t total_killed_requeued = 0;
  std::uint64_t total_migrated = 0;
  for (const char* algo : {"NULB", "NALB", "RISA", "RISA-BF"}) {
    Engine engine(scenario, algo);
    ASSERT_TRUE(engine.admission_batching());  // the default
    const SimMetrics windowed = engine.run(storm, "t");
    engine.set_admission_batching(false);
    const SimMetrics per_event = engine.run(storm, "t");
    EXPECT_EQ(metrics_fingerprint(windowed), metrics_fingerprint(per_event))
        << algo;
    EXPECT_EQ(windowed.events_executed, per_event.events_executed) << algo;
    // The failures opened a degraded window inside every run (which boxes
    // host victims, and whether defrag finds gain, is algorithm-specific:
    // those are summed below).
    EXPECT_GT(windowed.degraded_tu, 0.0) << algo;
    total_killed_requeued += windowed.killed + windowed.requeued;
    total_migrated += windowed.migrated;
  }
  // The storm exercised the kill/retry and migration machinery somewhere.
  EXPECT_GT(total_killed_requeued, 0u);
  EXPECT_GT(total_migrated, 0u);
}

TEST(AdmissionWindows, CleanRunMatchesPerEventAdmission) {
  // No lifecycle events at all: windows run at their longest (the
  // deferred-push/deferred-sample fast path), and the profiler must be the
  // only observable difference.
  const wl::Workload storm = tie_storm_workload(600, 17);
  for (const char* algo : {"NULB", "RISA"}) {
    Engine engine(Scenario::paper_defaults(), algo);
    engine.set_profiling(true);
    const SimMetrics windowed = engine.run(storm, "t");
    engine.set_admission_batching(false);
    const SimMetrics per_event = engine.run(storm, "t");
    EXPECT_EQ(metrics_fingerprint(windowed), metrics_fingerprint(per_event))
        << algo;
    ASSERT_TRUE(windowed.profile.recorded);
    EXPECT_GT(windowed.profile[Phase::Merge], 0.0) << algo;
  }
}

TEST(AdmissionWindows, TimelineSamplesAreIdentical) {
  // With a timeline attached the engine keeps per-event sampling (the
  // deferred-sample path is gated off), so every recorded point -- not
  // just the fingerprint -- must match per-event admission exactly.
  const wl::Workload storm = tie_storm_workload(400, 23);
  Scenario scenario = Scenario::paper_defaults();
  scenario.faults = storm_faults();

  Engine engine(scenario, "RISA");
  Timeline windowed_tl;
  engine.set_timeline(&windowed_tl);
  const SimMetrics windowed = engine.run(storm, "t");

  engine.set_admission_batching(false);
  Timeline per_event_tl;
  engine.set_timeline(&per_event_tl);
  const SimMetrics per_event = engine.run(storm, "t");

  EXPECT_EQ(metrics_fingerprint(windowed), metrics_fingerprint(per_event));
  const auto& wp = windowed_tl.points();
  const auto& pp = per_event_tl.points();
  ASSERT_EQ(wp.size(), pp.size());
  for (std::size_t i = 0; i < wp.size(); ++i) {
    EXPECT_EQ(wp[i].time, pp[i].time) << "point " << i;
    EXPECT_EQ(wp[i].active_vms, pp[i].active_vms) << "point " << i;
    EXPECT_EQ(wp[i].placed_total, pp[i].placed_total) << "point " << i;
    EXPECT_EQ(wp[i].dropped_total, pp[i].dropped_total) << "point " << i;
    EXPECT_EQ(wp[i].killed_total, pp[i].killed_total) << "point " << i;
    EXPECT_EQ(wp[i].offline_boxes, pp[i].offline_boxes) << "point " << i;
    for (ResourceType r :
         {ResourceType::Cpu, ResourceType::Ram, ResourceType::Storage}) {
      EXPECT_EQ(wp[i].utilization[r], pp[i].utilization[r]) << "point " << i;
    }
  }
}

TEST(AdmissionWindows, SweepIsThreadCountDeterministic) {
  // The ISSUE's 1-vs-8-thread contract on the tie-storm spec with faults
  // and migrations on the axis: every cell fingerprint byte-identical.
  SweepSpec spec;
  spec.scenarios.emplace_back("default", Scenario::paper_defaults());
  spec.workloads.push_back(
      WorkloadSpec::fixed("tie-storm", tie_storm_workload(350, 41)));
  spec.seeds = {kDefaultSeed};
  spec.algorithms = {"NULB", "NALB", "RISA", "RISA-BF"};
  spec.fault_plans.emplace_back("storm", storm_faults());
  spec.migration_plans.emplace_back("none", MigrationPlan{});
  spec.migration_plans.emplace_back("defrag", storm_migrations());

  const auto serial = SweepRunner(1).run(spec);
  const auto threaded = SweepRunner(8).run(spec);
  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_EQ(serial.size(), 8u);  // 4 algos x 2 migration plans
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(serial[i].metrics),
              metrics_fingerprint(threaded[i].metrics))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace risa::sim
