// Run telemetry (DESIGN.md §14): the Perfetto-compatible tracer and the
// unified MetricsRegistry must be *invisible* -- metrics fingerprints are
// byte-identical with tracing on or off for every algorithm, the full
// figure matrix, and checkpoint/resume with tracing armed on both ends --
// while the traces themselves honor the well-formedness contract (valid
// JSON after every flush, strictly nested spans per track, monotone
// counter samples, exact overflow accounting) and each category obeys its
// mask bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/metrics_registry.hpp"
#include "common/trace_writer.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "sim/telemetry.hpp"
#include "workload/arrival_source.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

// --- TraceWriter ------------------------------------------------------------

TEST(TraceWriter, EmptyTraceIsValidJson) {
  std::ostringstream sink;
  {
    TraceWriter w(sink);
    EXPECT_TRUE(w.ok());
  }
  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_EQ(s.events, 0u);
  EXPECT_EQ(s.overflow_dropped, 0u);
  EXPECT_TRUE(s.well_formed());
}

TEST(TraceWriter, ValidJsonAfterEveryFlush) {
  // The footer-rewrite design's whole point: a trace interrupted after any
  // flush (crash, kill -9 between flushes) still loads in Perfetto.
  std::ostringstream sink;
  TraceWriter w(sink);
  w.span("outer", "test", 0.0, 100.0, 1);
  w.span("inner", "test", 10.0, 20.0, 1);
  w.flush();
  {
    std::istringstream in(sink.str());
    const TraceSummary s = summarize_trace(in);
    EXPECT_EQ(s.events, 2u);
    EXPECT_TRUE(s.well_formed());
  }
  w.instant("mark", "test", 50.0, 2);
  w.counter("depth", "test", 60.0, 3.0);
  w.flush();
  {
    std::istringstream in(sink.str());
    const TraceSummary s = summarize_trace(in);
    EXPECT_EQ(s.events, 4u);
    EXPECT_TRUE(s.well_formed());
  }
  w.close();
  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_EQ(s.events, 4u);
  EXPECT_EQ(s.overflow_dropped, 0u);
  ASSERT_EQ(s.spans.size(), 2u);
  EXPECT_EQ(s.spans[0].name, "outer");  // sorted by total time
  EXPECT_EQ(s.instants.size(), 1u);
  EXPECT_EQ(s.counters.size(), 1u);
}

TEST(TraceWriter, OverflowDropsCountedExactly) {
  TraceWriter::Options opts;
  opts.ring_capacity = 8;
  opts.flush_on_full = false;  // drop instead of flushing mid-run
  std::ostringstream sink;
  TraceWriter w(sink, opts);
  for (int i = 0; i < 20; ++i) {
    w.instant("e", "test", static_cast<double>(i), 2);
  }
  EXPECT_EQ(w.emitted(), 8u);
  EXPECT_EQ(w.dropped(), 12u);
  w.close();
  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.overflow_dropped, 12u);
}

TEST(TraceWriter, FlushOnFullKeepsEverything) {
  TraceWriter::Options opts;
  opts.ring_capacity = 4;
  opts.flush_on_full = true;
  std::ostringstream sink;
  TraceWriter w(sink, opts);
  for (int i = 0; i < 100; ++i) {
    w.counter("c", "test", static_cast<double>(i), static_cast<double>(i));
  }
  w.close();
  EXPECT_EQ(w.emitted(), 100u);
  EXPECT_EQ(w.dropped(), 0u);
  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_EQ(s.events, 100u);
  EXPECT_TRUE(s.counters_monotone);
}

TEST(TraceWriter, UnopenablePathCountsEverythingDropped) {
  TraceWriter w("");  // registry-only telemetry rides this
  EXPECT_FALSE(w.ok());
  w.span("x", "test", 0.0, 1.0, 1);
  w.instant("y", "test", 0.0, 2);
  EXPECT_EQ(w.emitted(), 0u);
  EXPECT_EQ(w.dropped(), 2u);
  w.close();  // must not crash or write anywhere
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateIsIdempotent) {
  MetricsRegistry r;
  const auto a = r.counter("vm.admitted");
  const auto b = r.counter("vm.admitted");
  EXPECT_EQ(a, b);
  r.add(a, 3);
  r.add(b, 4);
  EXPECT_EQ(r.counter_value(a), 7);
  const auto g = r.gauge("census.live");
  r.set(g, 2.5);
  EXPECT_DOUBLE_EQ(r.gauge_value(g), 2.5);
  const auto h = r.histogram("window.span");
  r.observe(h, 1.0);
  r.observe(h, 100.0);
  EXPECT_EQ(r.histogram_value(h).total(), 2u);
}

TEST(MetricsRegistry, NameUnderTwoKindsThrows) {
  MetricsRegistry r;
  (void)r.counter("x");
  EXPECT_THROW((void)r.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)r.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry r;
  const auto c = r.counter("c");
  const auto g = r.gauge("g");
  const auto h = r.histogram("h");
  r.add(c, 9);
  r.set(g, 1.0);
  r.observe(h, 4.0);
  const std::size_t n = r.series_count();
  r.reset();
  EXPECT_EQ(r.series_count(), n);
  EXPECT_EQ(r.counter_value(c), 0);
  EXPECT_DOUBLE_EQ(r.gauge_value(g), 0.0);
  EXPECT_EQ(r.histogram_value(h).total(), 0u);
  EXPECT_EQ(r.counter("c"), c);  // same id after reset
}

TEST(MetricsRegistry, SnapshotJsonCarriesEverySeries) {
  MetricsRegistry r;
  r.add(r.counter("vm.dropped"), 5);
  r.set(r.gauge("power.holding_w"), 12.5);
  r.observe(r.histogram("loop.window_arrivals"), 3.0);
  const std::string json = r.snapshot_json();
  EXPECT_NE(json.find("\"vm.dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"power.holding_w\""), std::string::npos);
  EXPECT_NE(json.find("\"loop.window_arrivals\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- Category parsing -------------------------------------------------------

TEST(TelemetryConfigTest, ParseCategories) {
  EXPECT_EQ(parse_trace_categories("all"), kTraceAllCategories);
  EXPECT_EQ(parse_trace_categories("none"), 0u);
  EXPECT_EQ(parse_trace_categories("lifecycle"), kTraceLifecycle);
  EXPECT_EQ(parse_trace_categories("placement,power"),
            kTracePlacement | kTracePower);
  EXPECT_EQ(parse_trace_categories("calendar,lifecycle"),
            kTraceCalendar | kTraceLifecycle);
  EXPECT_THROW((void)parse_trace_categories("bogus"), std::invalid_argument);
}

// --- Engine integration -----------------------------------------------------

wl::Workload saturating_workload(std::size_t n = 20'000) {
  // Past ~10k VMs the paper cluster saturates, so this workload produces
  // real drops (both admission-path hooks fire) on every algorithm.
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, kDefaultSeed);
}

FaultPlan small_fault_plan() {
  // 4000 VMs at the default 10 tu mean interarrival span ~40k tu; failing
  // the first boxes mid-run (every algorithm fills them early, and
  // lifetimes run thousands of tu) guarantees kills and retries.
  FaultPlan plan;
  plan.seed = 5;
  plan.retry.max_attempts = 2;
  plan.retry.delay_tu = 3.0;
  for (std::uint32_t b : {0u, 1u, 2u, 3u}) {
    FaultAction fail;
    fail.kind = FaultAction::Kind::Fail;
    fail.at_time = 20000.0;
    fail.box = b;
    plan.actions.push_back(fail);
    FaultAction repair = fail;
    repair.kind = FaultAction::Kind::Repair;
    repair.at_time = 30000.0;
    plan.actions.push_back(repair);
  }
  FaultAction link_fail;
  link_fail.kind = FaultAction::Kind::LinkFail;
  link_fail.at_time = 22000.0;
  link_fail.random_links = 1;
  plan.actions.push_back(link_fail);
  FaultAction link_repair;
  link_repair.kind = FaultAction::Kind::LinkRepair;
  link_repair.at_time = 28000.0;
  link_repair.random_links = 1;
  plan.actions.push_back(link_repair);
  plan.validate();
  return plan;
}

MigrationPlan small_migration_plan() {
  MigrationPlan plan;
  plan.period_tu = 25.0;
  plan.per_sweep_budget = 4;
  plan.validate();
  return plan;
}

TEST(TelemetryEngine, FingerprintsIdenticalTracingOnOffAllAlgorithms) {
  const wl::Workload w = saturating_workload();
  for (const std::string& algo : core::algorithm_names()) {
    Engine plain(Scenario::paper_defaults(), algo);
    const SimMetrics base = plain.run(w, "sat");
    const std::string want = metrics_fingerprint(base);
    EXPECT_GT(base.dropped, 0u) << algo << ": workload does not saturate";

    std::ostringstream sink;
    TelemetryConfig cfg;
    Telemetry tel(cfg, sink);
    Engine traced(Scenario::paper_defaults(), algo);
    traced.set_telemetry(&tel);
    const SimMetrics m = traced.run(w, "sat");
    EXPECT_EQ(metrics_fingerprint(m), want) << algo;
    tel.close();

    // Satellite: the registry is the engine's drop/kill/requeue tally now
    // -- its counters must agree with SimMetrics exactly, reason by
    // reason (no faults here, so admitted == placed).
    MetricsRegistry& r = tel.registry();
    EXPECT_EQ(r.counter_value(r.counter("vm.admitted")),
              static_cast<std::int64_t>(m.placed))
        << algo;
    EXPECT_EQ(r.counter_value(r.counter("vm.dropped")),
              static_cast<std::int64_t>(m.dropped))
        << algo;
    for (std::size_t i = 0; i < core::kNumDropReasons; ++i) {
      const auto reason = static_cast<core::DropReason>(i);
      EXPECT_EQ(r.counter_value(
                    r.counter("vm.dropped." + std::string(core::name(reason)))),
                m.drops_by_reason.get(core::name(reason)))
          << algo << " reason " << core::name(reason);
    }

    // The trace itself honors the §14 well-formedness contract.
    std::istringstream in(sink.str());
    const TraceSummary s = summarize_trace(in);
    EXPECT_TRUE(s.well_formed()) << algo;
    EXPECT_EQ(s.overflow_dropped, 0u) << algo;
    EXPECT_GT(s.events, 0u) << algo;
    bool saw_admission = false;
    for (const auto& sp : s.spans) saw_admission |= sp.name == "admission";
    EXPECT_TRUE(saw_admission) << algo;
  }
}

TEST(TelemetryEngine, LifecycleCountersMatchMetricsUnderFaults) {
  const wl::Workload w = saturating_workload(4000);
  const FaultPlan faults = small_fault_plan();
  const MigrationPlan migrations = small_migration_plan();

  Engine plain(Scenario::paper_defaults(), "RISA");
  plain.set_fault_plan(&faults);
  plain.set_migration_plan(&migrations);
  const std::string want = metrics_fingerprint(plain.run(w, "faulty"));

  std::ostringstream sink;
  TelemetryConfig cfg;
  Telemetry tel(cfg, sink);
  Engine traced(Scenario::paper_defaults(), "RISA");
  traced.set_fault_plan(&faults);
  traced.set_migration_plan(&migrations);
  traced.set_telemetry(&tel);
  const SimMetrics m = traced.run(w, "faulty");
  EXPECT_EQ(metrics_fingerprint(m), want);
  tel.close();

  ASSERT_GT(m.killed, 0u) << "fault plan produced no kills";
  MetricsRegistry& r = tel.registry();
  EXPECT_EQ(r.counter_value(r.counter("vm.killed")),
            static_cast<std::int64_t>(m.killed));
  EXPECT_EQ(r.counter_value(r.counter("vm.requeued")),
            static_cast<std::int64_t>(m.requeued));
  EXPECT_EQ(r.counter_value(r.counter("vm.retry_placed")),
            static_cast<std::int64_t>(m.retry_placed));
  // Every scheduled retry executes before the calendar drains.
  EXPECT_EQ(r.counter_value(r.counter("vm.retries")),
            static_cast<std::int64_t>(m.requeued));
  EXPECT_EQ(r.counter_value(r.counter("vm.migrated")),
            static_cast<std::int64_t>(m.migrated));
  EXPECT_GT(r.counter_value(r.counter("fault.events")), 0);

  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_TRUE(s.well_formed());
  std::uint64_t kills = 0, faults_seen = 0;
  for (const auto& i : s.instants) {
    if (i.name.rfind("kill", 0) == 0) kills += i.count;
    if (i.name == "box-fail" || i.name == "box-repair" ||
        i.name == "link-fail" || i.name == "link-repair") {
      faults_seen += i.count;
    }
  }
  EXPECT_EQ(kills, m.killed);
  EXPECT_GT(faults_seen, 0u);
}

TEST(TelemetryEngine, RegistryOnlyModeWithEmptyTracePath) {
  const wl::Workload w = saturating_workload(2000);
  TelemetryConfig cfg;  // trace_path empty: no file, registry still accrues
  Telemetry tel(cfg);
  EXPECT_FALSE(tel.writer().ok());
  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_telemetry(&tel);
  const SimMetrics m = engine.run(w, "reg-only");
  MetricsRegistry& r = tel.registry();
  EXPECT_EQ(r.counter_value(r.counter("vm.admitted")),
            static_cast<std::int64_t>(m.placed));
  EXPECT_EQ(tel.writer().emitted(), 0u);
  EXPECT_GT(tel.writer().dropped(), 0u);
}

TEST(TelemetryEngine, CategoryMasksHonored) {
  const wl::Workload w = saturating_workload(4000);
  const FaultPlan faults = small_fault_plan();

  struct Expectation {
    std::uint32_t mask;
    std::set<std::string> counters;
    bool spans;     // admission/settlement window spans expected
    bool instants;  // lifecycle instants expected
  };
  const Expectation cases[] = {
      {kTraceLifecycle,
       {"live_vms", "offline_boxes", "failed_links"},
       false,
       true},
      {kTracePlacement, {"arrival_ring_depth"}, true, false},
      {kTracePower, {"holding_power_w"}, false, false},
      {kTraceCalendar, {"calendar_events"}, false, false},
  };
  for (const Expectation& want : cases) {
    std::ostringstream sink;
    TelemetryConfig cfg;
    cfg.categories = want.mask;
    Telemetry tel(cfg, sink);
    Engine engine(Scenario::paper_defaults(), "RISA");
    engine.set_fault_plan(&faults);
    engine.set_telemetry(&tel);
    (void)engine.run(w, "mask");
    tel.close();

    std::istringstream in(sink.str());
    const TraceSummary s = summarize_trace(in);
    EXPECT_TRUE(s.well_formed()) << "mask " << want.mask;
    std::set<std::string> counters;
    for (const auto& c : s.counters) counters.insert(c.name);
    EXPECT_EQ(counters, want.counters) << "mask " << want.mask;
    EXPECT_EQ(!s.spans.empty(), want.spans) << "mask " << want.mask;
    EXPECT_EQ(!s.instants.empty(), want.instants) << "mask " << want.mask;
  }
}

TEST(TelemetryEngine, ProfilerExportsPhaseTrack) {
  const wl::Workload w = saturating_workload(2000);
  std::ostringstream sink;
  TelemetryConfig cfg;
  cfg.categories = 0;  // phase track is never masked
  Telemetry tel(cfg, sink);
  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_profiling(true);
  engine.set_telemetry(&tel);
  (void)engine.run(w, "profiled");
  tel.close();

  std::istringstream in(sink.str());
  const TraceSummary s = summarize_trace(in);
  EXPECT_TRUE(s.well_formed());
  bool saw_merge = false, saw_placement = false;
  for (const auto& sp : s.spans) {
    saw_merge |= sp.name == "merge";
    saw_placement |= sp.name == "placement";
  }
  EXPECT_TRUE(saw_merge);
  EXPECT_TRUE(saw_placement);
}

TEST(TelemetryEngine, SampleCadenceThinsCounterTracks) {
  const wl::Workload w = saturating_workload(4000);
  auto count_samples = [&](double cadence) {
    std::ostringstream sink;
    TelemetryConfig cfg;
    cfg.sample_cadence_tu = cadence;
    Telemetry tel(cfg, sink);
    Engine engine(Scenario::paper_defaults(), "RISA");
    engine.set_telemetry(&tel);
    (void)engine.run(w, "cadence");
    tel.close();
    std::istringstream in(sink.str());
    const TraceSummary s = summarize_trace(in);
    EXPECT_TRUE(s.counters_monotone);
    for (const auto& c : s.counters) {
      if (c.name == "live_vms") return c.samples;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t dense = count_samples(0.0);
  const std::uint64_t sparse = count_samples(500.0);
  EXPECT_GT(dense, 0u);
  EXPECT_GT(sparse, 0u);
  EXPECT_LT(sparse, dense / 2);
}

// --- Sweep integration ------------------------------------------------------

TEST(TelemetrySweep, FigureMatrixFingerprintsUnchangedByPerCellTraces) {
  SweepSpec spec = SweepSpec::figure_matrix(kDefaultSeed);
  const SweepRunner runner(0);
  const auto plain = runner.run(spec);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "risa_traces";
  std::filesystem::create_directories(dir);
  spec.trace_dir = dir.string();
  const auto traced = runner.run(spec);

  ASSERT_EQ(plain.size(), traced.size());
  std::size_t traces_found = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(metrics_fingerprint(traced[i].metrics),
              metrics_fingerprint(plain[i].metrics))
        << "cell " << i << " (" << plain[i].metrics.workload << ", "
        << plain[i].metrics.algorithm << ")";
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++traces_found;
    const TraceSummary s = summarize_trace_file(entry.path().string());
    EXPECT_TRUE(s.well_formed()) << entry.path();
    EXPECT_GT(s.events, 0u) << entry.path();
  }
  EXPECT_EQ(traces_found, spec.cell_count());
  std::filesystem::remove_all(dir);
}

// --- Checkpoint / resume ----------------------------------------------------

TEST(TelemetryCheckpoint, ResumeBitIdenticalWithTracingArmedBothEnds) {
  const FaultPlan faults = small_fault_plan();
  const MigrationPlan migrations = small_migration_plan();
  wl::SyntheticConfig cfg;
  cfg.count = 4000;

  // The uninterrupted, untraced run is the reference fingerprint.
  std::string want;
  {
    Engine engine(Scenario::paper_defaults(), "RISA");
    engine.set_fault_plan(&faults);
    engine.set_migration_plan(&migrations);
    wl::SyntheticStreamSource source(cfg, kDefaultSeed);
    want = metrics_fingerprint(engine.run_stream(source, "ckpt"));
  }

  // Checkpointing run with tracing armed.
  std::vector<std::string> checkpoints;
  CheckpointPolicy policy;
  policy.every_events = 1500;
  policy.emit = [&checkpoints](const std::string& bytes) {
    checkpoints.push_back(bytes);
  };
  std::ostringstream full_sink;
  TelemetryConfig tcfg;
  Telemetry full_tel(tcfg, full_sink);
  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_fault_plan(&faults);
  engine.set_migration_plan(&migrations);
  engine.set_telemetry(&full_tel);
  wl::SyntheticStreamSource source(cfg, kDefaultSeed);
  const SimMetrics full = engine.run_stream(source, "ckpt", &policy);
  EXPECT_EQ(metrics_fingerprint(full), want);
  ASSERT_GE(checkpoints.size(), 2u);

  // Every resume runs with its own armed telemetry; the sampler re-arms
  // at the restored sim time (no telemetry state crosses the checkpoint),
  // and each resumed run reproduces the uninterrupted fingerprint.
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    std::ostringstream sink;
    Telemetry tel(tcfg, sink);
    Engine fresh(Scenario::paper_defaults(), "RISA");
    fresh.set_fault_plan(&faults);
    fresh.set_migration_plan(&migrations);
    fresh.set_telemetry(&tel);
    wl::SyntheticStreamSource restored(cfg, kDefaultSeed);
    std::istringstream in(checkpoints[c]);
    const SimMetrics resumed = fresh.resume_stream(in, restored);
    EXPECT_EQ(metrics_fingerprint(resumed), want) << "checkpoint " << c;
    tel.close();
    std::istringstream trace_in(sink.str());
    const TraceSummary s = summarize_trace(trace_in);
    EXPECT_TRUE(s.well_formed()) << "checkpoint " << c;
    EXPECT_GT(s.events, 0u) << "checkpoint " << c;
  }
}

// --- Summary formatting -----------------------------------------------------

TEST(TraceSummaryFormat, ReportsViolationsAndTopSpans) {
  // A hand-built malformed trace: overlapping (non-nesting) spans on one
  // tid and a counter that steps backwards in ts.
  const std::string bad =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,\"name\":\"a\","
      "\"cat\":\"t\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10,\"name\":\"b\","
      "\"cat\":\"t\"},"
      "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":7,\"name\":\"c\","
      "\"args\":{\"value\":1}},"
      "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":3,\"name\":\"c\","
      "\"args\":{\"value\":2}}"
      "],\"overflowDropped\":4}";
  std::istringstream in(bad);
  const TraceSummary s = summarize_trace(in);
  EXPECT_FALSE(s.spans_nest);
  EXPECT_FALSE(s.counters_monotone);
  EXPECT_FALSE(s.well_formed());
  EXPECT_EQ(s.overflow_dropped, 4u);
  const std::string report = format_trace_summary(s);
  EXPECT_NE(report.find("VIOLATION"), std::string::npos);
  EXPECT_NE(report.find("overflow-dropped"), std::string::npos);
}

TEST(TraceSummaryFormat, MalformedJsonThrows) {
  std::istringstream truncated("{\"traceEvents\":[{\"ph\":\"X\"");
  EXPECT_THROW((void)summarize_trace(truncated), std::runtime_error);
  std::istringstream trailing("{\"traceEvents\":[]} extra");
  EXPECT_THROW((void)summarize_trace(trailing), std::runtime_error);
}

}  // namespace
}  // namespace risa::sim
