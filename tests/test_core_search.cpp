// Search primitives: contention ratios, first-fit anchors, both BFS
// interpretations and the NALB bandwidth ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contention.hpp"
#include "core/search.hpp"
#include "network/fabric.hpp"
#include "topology/cluster.hpp"

namespace risa::core {
namespace {

struct SearchFixture : ::testing::Test {
  SearchFixture()
      : cluster(topo::ClusterConfig{}),
        fabric(topo::ClusterConfig{}, net::FabricConfig{}) {}

  topo::Cluster cluster;
  net::Fabric fabric;
};

TEST_F(SearchFixture, ContentionRatioEdgeCases) {
  PerResource<Units> avail{100, 0, 50};
  const auto cr = contention_ratios(UnitVector{10, 5, 0}, avail);
  EXPECT_DOUBLE_EQ(cr[ResourceType::Cpu], 0.1);
  EXPECT_TRUE(std::isinf(cr[ResourceType::Ram]));  // demand vs zero avail
  EXPECT_DOUBLE_EQ(cr[ResourceType::Storage], 0.0);  // zero demand
  EXPECT_EQ(most_contended(cr), ResourceType::Ram);
}

TEST_F(SearchFixture, MostContendedTieBreaksCanonically) {
  const PerResource<double> tied{0.5, 0.5, 0.5};
  EXPECT_EQ(most_contended(tied), ResourceType::Cpu);
  const PerResource<double> ram_sto{0.1, 0.5, 0.5};
  EXPECT_EQ(most_contended(ram_sto), ResourceType::Ram);
}

TEST_F(SearchFixture, RestrictedAvailabilityCountsOnlyFilteredRacks) {
  PerResource<std::vector<RackId>> racks;
  racks[ResourceType::Cpu] = {RackId{0}, RackId{1}};
  racks[ResourceType::Ram] = {RackId{2}};
  racks[ResourceType::Storage] = {};
  const auto avail = restricted_availability(cluster, racks);
  EXPECT_EQ(avail[ResourceType::Cpu], 2 * 2 * 128);
  EXPECT_EQ(avail[ResourceType::Ram], 2 * 128);
  EXPECT_EQ(avail[ResourceType::Storage], 0);
}

TEST_F(SearchFixture, FirstFitScansInIdOrder) {
  // Burn the first three CPU boxes below the demand.
  const auto& cpu = cluster.boxes_of_type(ResourceType::Cpu);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.allocate(cpu[static_cast<std::size_t>(i)], 120).ok());
  }
  const BoxId hit = first_fit_box(cluster, ResourceType::Cpu, 16, std::nullopt);
  EXPECT_EQ(hit, cpu[3]);
  // A demand small enough for the burned boxes prefers the earliest box.
  const BoxId small = first_fit_box(cluster, ResourceType::Cpu, 8, std::nullopt);
  EXPECT_EQ(small, cpu[0]);
}

TEST_F(SearchFixture, FirstFitHonorsRackFilter) {
  PerResource<std::vector<RackId>> racks;
  racks[ResourceType::Cpu] = {RackId{5}};
  const BoxId hit =
      first_fit_box(cluster, ResourceType::Cpu, 8, RackFilter{racks});
  ASSERT_TRUE(hit.valid());
  EXPECT_EQ(cluster.box(hit).rack(), RackId{5});
  racks[ResourceType::Cpu] = {};
  EXPECT_FALSE(
      first_fit_box(cluster, ResourceType::Cpu, 8, RackFilter{racks}).valid());
}

TEST_F(SearchFixture, GlobalOrderIgnoresAnchorRack) {
  // Global order scans from box id 0 regardless of the anchor rack.
  const BoxId hit =
      bfs_search(cluster, fabric, RackId{9}, ResourceType::Ram, 8,
                 NeighborOrder::BoxIdOrder, CompanionSearch::GlobalOrder,
                 std::nullopt);
  EXPECT_EQ(cluster.box(hit).rack(), RackId{0});
}

TEST_F(SearchFixture, AnchorRackFirstPrefersLocalBoxes) {
  const BoxId hit =
      bfs_search(cluster, fabric, RackId{9}, ResourceType::Ram, 8,
                 NeighborOrder::BoxIdOrder, CompanionSearch::AnchorRackFirst,
                 std::nullopt);
  EXPECT_EQ(cluster.box(hit).rack(), RackId{9});
}

TEST_F(SearchFixture, AnchorRackFirstFallsBackToOtherRacks) {
  // Exhaust rack 9's RAM; the search must continue in id order elsewhere.
  for (BoxId id : cluster.boxes_of_type_in_rack(RackId{9}, ResourceType::Ram)) {
    ASSERT_TRUE(cluster.allocate(id, 128).ok());
  }
  const BoxId hit =
      bfs_search(cluster, fabric, RackId{9}, ResourceType::Ram, 8,
                 NeighborOrder::BoxIdOrder, CompanionSearch::AnchorRackFirst,
                 std::nullopt);
  EXPECT_EQ(cluster.box(hit).rack(), RackId{0});
}

TEST_F(SearchFixture, NoCandidateReturnsInvalid) {
  for (BoxId id : cluster.boxes_of_type(ResourceType::Storage)) {
    ASSERT_TRUE(cluster.allocate(id, 128).ok());
  }
  EXPECT_FALSE(bfs_search(cluster, fabric, RackId{0}, ResourceType::Storage, 1,
                          NeighborOrder::BoxIdOrder,
                          CompanionSearch::GlobalOrder, std::nullopt)
                   .valid());
}

TEST_F(SearchFixture, BandwidthOrderingIsStableNoopOnIdleFabric) {
  // All candidates tie at full headroom -> stable sort keeps id order, so
  // NALB behaves exactly like NULB on an unloaded fabric.
  const BoxId nulb_choice =
      bfs_search(cluster, fabric, RackId{0}, ResourceType::Ram, 8,
                 NeighborOrder::BoxIdOrder, CompanionSearch::GlobalOrder,
                 std::nullopt);
  const BoxId nalb_choice =
      bfs_search(cluster, fabric, RackId{0}, ResourceType::Ram, 8,
                 NeighborOrder::BandwidthDescending,
                 CompanionSearch::GlobalOrder, std::nullopt);
  EXPECT_EQ(nulb_choice, nalb_choice);
}

TEST_F(SearchFixture, BandwidthOrderingDeprioritizesLoadedBoxes) {
  // Load every uplink of the first RAM box; NALB must skip it while NULB
  // still picks it.
  const auto& ram = cluster.boxes_of_type(ResourceType::Ram);
  for (LinkId id : fabric.box_uplinks(ram[0])) {
    ASSERT_TRUE(fabric.allocate(id, gbps(150.0)).ok());
  }
  const BoxId nulb_choice =
      bfs_search(cluster, fabric, RackId{0}, ResourceType::Ram, 8,
                 NeighborOrder::BoxIdOrder, CompanionSearch::GlobalOrder,
                 std::nullopt);
  const BoxId nalb_choice =
      bfs_search(cluster, fabric, RackId{0}, ResourceType::Ram, 8,
                 NeighborOrder::BandwidthDescending,
                 CompanionSearch::GlobalOrder, std::nullopt);
  EXPECT_EQ(nulb_choice, ram[0]);
  EXPECT_NE(nalb_choice, ram[0]);
}

TEST_F(SearchFixture, RackAllowedSemantics) {
  EXPECT_TRUE(rack_allowed(std::nullopt, ResourceType::Cpu, RackId{3}));
  PerResource<std::vector<RackId>> racks;
  racks[ResourceType::Cpu] = {RackId{1}, RackId{3}};
  const RackFilter filter{racks};
  EXPECT_TRUE(rack_allowed(filter, ResourceType::Cpu, RackId{3}));
  EXPECT_FALSE(rack_allowed(filter, ResourceType::Cpu, RackId{2}));
  EXPECT_FALSE(rack_allowed(filter, ResourceType::Ram, RackId{3}));
}

}  // namespace
}  // namespace risa::core
