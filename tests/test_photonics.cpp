// Photonic energy model: Beneš geometry, Eq. (1), transceivers, ledger.
#include <gtest/gtest.h>

#include "network/circuit.hpp"
#include "network/routing.hpp"
#include "photonics/benes.hpp"
#include "photonics/power_ledger.hpp"
#include "photonics/switch_energy.hpp"
#include "photonics/transceiver.hpp"
#include "topology/config.hpp"

namespace risa::phot {
namespace {

TEST(Benes, StageAndCellCounts) {
  // 2*log2(N) - 1 stages; (N/2)*stages total cells (Lee & Dupuis [10]).
  EXPECT_EQ(benes_stages(2), 1u);
  EXPECT_EQ(benes_stages(4), 3u);
  EXPECT_EQ(benes_stages(8), 5u);
  EXPECT_EQ(benes_stages(64), 11u);    // the paper's box switch
  EXPECT_EQ(benes_stages(256), 15u);   // intra-rack switch
  EXPECT_EQ(benes_stages(512), 17u);   // inter-rack switch
  EXPECT_EQ(benes_total_cells(64), 64u / 2 * 11);
  EXPECT_EQ(benes_total_cells(256), 256u / 2 * 15);
  EXPECT_EQ(benes_path_cells(64), 11u);
  EXPECT_THROW((void)benes_stages(1), std::invalid_argument);
}

TEST(Benes, NonPowerOfTwoRoundsUp) {
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(64), 6u);
  EXPECT_EQ(ceil_log2(65), 7u);
  EXPECT_EQ(benes_stages(100), 13u);  // ceil(log2 100) = 7 -> 13 stages
}

TEST(SwitchEnergy, Equation1HandComputed) {
  // 64-port switch (n = 11 cells), T = 1000 tu at 1 s/tu, alpha = 0.9:
  //   switching = (11/2) * 13.75 mW * (1 us * log2 64) = 5.5*0.01375*6e-6 J
  //   trimming  = 0.9 * 11 * 22.67 mW * 1000 s
  SwitchEnergyConfig cfg;
  const SwitchEnergy e = circuit_switch_energy(cfg, 64, 1000.0);
  EXPECT_NEAR(e.switching_j, 5.5 * 0.01375 * 6e-6, 1e-12);
  EXPECT_NEAR(e.trimming_j, 0.9 * 11 * 0.02267 * 1000.0, 1e-9);
  EXPECT_NEAR(e.total_j(), e.switching_j + e.trimming_j, 1e-12);
}

TEST(SwitchEnergy, TrimmingDominatesSwitchingByConstruction) {
  // The lat_sw modeling assumption (DESIGN.md §2.5) is immaterial because
  // the one-time switching term is many orders below the holding term for
  // any realistic lifetime; pin that here.
  SwitchEnergyConfig cfg;
  for (std::uint32_t ports : {64u, 256u, 512u}) {
    const SwitchEnergy e = circuit_switch_energy(cfg, ports, 100.0);
    EXPECT_GT(e.trimming_j / e.switching_j, 1e6) << "ports=" << ports;
  }
}

TEST(SwitchEnergy, MonotoneInLifetimeAndPorts) {
  SwitchEnergyConfig cfg;
  EXPECT_LT(circuit_switch_energy(cfg, 64, 10.0).total_j(),
            circuit_switch_energy(cfg, 64, 20.0).total_j());
  EXPECT_LT(circuit_switch_energy(cfg, 64, 10.0).total_j(),
            circuit_switch_energy(cfg, 512, 10.0).total_j());
  EXPECT_THROW((void)circuit_switch_energy(cfg, 64, -1.0), std::invalid_argument);
}

TEST(SwitchEnergy, AlphaScalesTrimmingLinearly) {
  SwitchEnergyConfig lo, hi;
  lo.mrr.alpha = 0.5;
  hi.mrr.alpha = 1.0;
  const double t_lo = circuit_switch_energy(lo, 64, 100.0).trimming_j;
  const double t_hi = circuit_switch_energy(hi, 64, 100.0).trimming_j;
  EXPECT_NEAR(t_hi / t_lo, 2.0, 1e-12);
}

TEST(Mrr, AlphaBoundsEnforced) {
  MrrParams p;
  p.alpha = 0.4;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.alpha = 1.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.alpha = 0.9;
  EXPECT_NO_THROW(p.validate());
}

TEST(Transceiver, LinkRateMatchesLuxteraModule) {
  const TransceiverParams p;
  EXPECT_EQ(p.link_rate(), gbps(200.0));  // 8 x 25 Gb/s
}

TEST(Transceiver, PowerIsRateTimesEnergyPerBit) {
  const TransceiverParams p;
  // 10 Gb/s circuit over 2 hops: 2 modules/hop * 2 hops * 1e10 b/s * 22.5 pJ
  // = 0.9 W.
  EXPECT_NEAR(transceiver_power_w(p, gbps(10.0), 2), 0.9, 1e-9);
  EXPECT_NEAR(transceiver_energy_j(p, gbps(10.0), 2, 100.0), 90.0, 1e-6);
  EXPECT_THROW((void)transceiver_power_w(p, -1, 2), std::invalid_argument);
  EXPECT_THROW((void)transceiver_energy_j(p, 1, 2, -1.0), std::invalid_argument);
}

TEST(PowerLedger, ChargesSwitchesAndTransceiversAlongPath) {
  const topo::ClusterConfig cluster_cfg;
  net::Fabric fabric(cluster_cfg, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable table(router);
  PhotonicConfig photonics;
  PowerLedger ledger(photonics, fabric);

  // Intra-rack circuit: box(64) + rack(256) + box(64) switches, 2 hops.
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                               gbps(10.0), net::LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  auto cid = table.establish(VmId{1}, net::FlowKind::CpuRam, gbps(10.0),
                             std::move(path.value()));
  ASSERT_TRUE(cid.ok());

  const double lifetime_tu = 50.0;
  const VmEnergy e = ledger.charge_vm(table, VmId{1}, lifetime_tu);

  const double expected_trim =
      0.9 * (11 + 15 + 11) * 0.02267 * lifetime_tu;  // alpha*n*P_trim*T
  EXPECT_NEAR(e.switch_trimming_j, expected_trim, 1e-9);
  // 2 modules/hop * 2 hops * 1e10 b/s * 22.5e-12 J/b * 50 s = 45 J.
  EXPECT_NEAR(e.transceiver_j, 45.0, 1e-6);
  EXPECT_GT(e.switch_switching_j, 0.0);
  EXPECT_EQ(ledger.circuits_charged(), 1u);
  EXPECT_NEAR(ledger.total_energy_j(), e.total_j(), 1e-9);
  EXPECT_NEAR(ledger.average_power_w(100.0), e.total_j() / 100.0, 1e-9);
}

TEST(PowerLedger, InterRackCircuitCostsMore) {
  const topo::ClusterConfig cluster_cfg;
  net::Fabric fabric(cluster_cfg, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable table(router);
  PhotonicConfig photonics;
  PowerLedger intra_ledger(photonics, fabric);
  PowerLedger inter_ledger(photonics, fabric);

  auto intra = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                                gbps(10.0), net::LinkSelectPolicy::FirstFit);
  auto inter = router.find_path(BoxId{0}, RackId{0}, BoxId{8}, RackId{1},
                                gbps(10.0), net::LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(intra.ok());
  ASSERT_TRUE(inter.ok());
  auto c1 = table.establish(VmId{1}, net::FlowKind::CpuRam, gbps(10.0),
                            std::move(intra.value()));
  auto c2 = table.establish(VmId{2}, net::FlowKind::CpuRam, gbps(10.0),
                            std::move(inter.value()));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  const VmEnergy ei = intra_ledger.charge_vm(table, VmId{1}, 10.0);
  const VmEnergy ex = inter_ledger.charge_vm(table, VmId{2}, 10.0);
  // Inter-rack crosses 2 extra switches (incl. the 512-port core) and 2
  // extra transceiver hops -> strictly more of everything.
  EXPECT_GT(ex.switch_trimming_j, ei.switch_trimming_j);
  EXPECT_GT(ex.transceiver_j, ei.transceiver_j);
  // Ratio of trimming: (11+15+17+15+11)/(11+15+11) = 69/37.
  EXPECT_NEAR(ex.switch_trimming_j / ei.switch_trimming_j, 69.0 / 37.0, 1e-9);
}

TEST(PowerLedger, AveragePowerRequiresPositiveHorizon) {
  const topo::ClusterConfig cluster_cfg;
  net::Fabric fabric(cluster_cfg, net::FabricConfig{});
  PhotonicConfig photonics;
  PowerLedger ledger(photonics, fabric);
  EXPECT_THROW((void)ledger.average_power_w(0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ledger.average_power_w(10.0), 0.0);
}

TEST(PhotonicConfig, SecondsPerTimeUnitScalesTrimming) {
  SwitchEnergyConfig cfg;
  cfg.seconds_per_time_unit = 2.0;
  const double doubled = circuit_switch_energy(cfg, 64, 100.0).trimming_j;
  cfg.seconds_per_time_unit = 1.0;
  const double base = circuit_switch_energy(cfg, 64, 100.0).trimming_j;
  EXPECT_NEAR(doubled / base, 2.0, 1e-12);
}

}  // namespace
}  // namespace risa::phot
